"""The P2Auth facade: the public API of the reproduction.

:class:`P2Auth` ties the whole Fig. 4 workflow together — PIN storage
and verification, the preprocessing pipeline, enrollment, and
authentication with results integration. A typical session::

    auth = P2Auth(pin="1628")
    auth.enroll(my_trials, third_party_trials)
    decision = auth.authenticate(probe_trial)
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..config import PipelineConfig
from ..errors import EnrollmentError
from ..types import PinEntryTrial
from .authentication import AuthDecision, authenticate_preprocessed
from .degradation import DegradationEvent, DegradationPolicy, apply_policy
from .enrollment import (
    EnrolledModels,
    EnrollmentOptions,
    NegativeBank,
    enroll_models,
)
from .pin import PinVerifier
from .pipeline import preprocess_trial


class P2Auth:
    """Two-factor authenticator: PIN + keystroke-induced PPG.

    Args:
        pin: the user's PIN, or ``None`` for the NO-PIN mode in which
            the keystroke pattern alone authenticates (Section
            IV-B.2.6).
        pipeline_config: signal-processing constants (paper defaults).
        options: enrollment options (privacy boost, feature method...).
        salt: fixed PIN-hash salt for deterministic tests.
        policy: graceful-degradation policy applied to every probe
            trial before preprocessing (gap repair, channel fallback,
            quality gate — see :mod:`repro.core.degradation`).
            ``None`` disables the ladder: trials are scored as-is, the
            pre-policy behaviour.
    """

    def __init__(
        self,
        pin: Optional[str] = None,
        pipeline_config: Optional[PipelineConfig] = None,
        options: Optional[EnrollmentOptions] = None,
        salt: Optional[bytes] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> None:
        self._pin = PinVerifier(pin, salt=salt)
        self._config = (
            pipeline_config if pipeline_config is not None else PipelineConfig()
        )
        self._options = options if options is not None else EnrollmentOptions()
        self._policy = policy
        self._models: Optional[EnrolledModels] = None

    @property
    def no_pin_mode(self) -> bool:
        """Whether this authenticator runs without a fixed PIN."""
        return not self._pin.has_pin

    @property
    def enrolled(self) -> bool:
        """Whether :meth:`enroll` has completed."""
        return self._models is not None

    @property
    def models(self) -> EnrolledModels:
        """The trained models (raises before enrollment)."""
        if self._models is None:
            raise EnrollmentError("no user is enrolled")
        return self._models

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration in effect."""
        return self._config

    @property
    def options(self) -> EnrollmentOptions:
        """The enrollment options in effect."""
        return self._options

    @property
    def policy(self) -> Optional[DegradationPolicy]:
        """The degradation policy in effect (``None`` = disabled)."""
        return self._policy

    def enroll(
        self,
        legit_trials: Sequence[PinEntryTrial],
        third_party_trials: Sequence[PinEntryTrial],
        shared_negatives: Optional[NegativeBank] = None,
    ) -> "P2Auth":
        """Enroll a user from their trials plus the third-party store.

        Args:
            legit_trials: the enrolling user's PIN entries.
            third_party_trials: negative samples from other people
                stored on the device (paper default: 100). Ignored when
                ``shared_negatives`` is given.
            shared_negatives: a pre-built
                :class:`~repro.core.enrollment.NegativeBank`; skips the
                store-side preprocessing and feature extraction.
        """
        self._models = enroll_models(
            legit_trials,
            third_party_trials,
            self._config,
            self._options,
            shared_negatives=shared_negatives,
        )
        return self

    def authenticate(
        self,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
    ) -> AuthDecision:
        """Authenticate one PIN-entry trial.

        Args:
            trial: the probe trial.
            claimed_pin: the PIN the typist entered; defaults to the
                digits recorded in the trial.

        Returns:
            The authentication decision.

        Raises:
            QualityError: when a degradation policy is set and the
                trial is too damaged to score (gap beyond the repair
                budget, too few usable channels, failed quality gate).
        """
        if self._models is None:
            raise EnrollmentError("enroll a user before authenticating")
        entered = claimed_pin if claimed_pin is not None else trial.pin
        pin_ok: Optional[bool]
        if self.no_pin_mode:
            pin_ok = None
        else:
            pin_ok = self._pin.verify(entered)
            if not pin_ok:
                # Short-circuit: no signal processing on a wrong PIN.
                return AuthDecision(
                    accepted=False,
                    reason="PIN verification failed",
                    pin_ok=False,
                )
        degradation: Tuple[DegradationEvent, ...] = ()
        if self._policy is not None:
            trial, degradation = apply_policy(trial, self._config, self._policy)
        preprocessed = preprocess_trial(trial, self._config)
        decision = authenticate_preprocessed(
            self._models, preprocessed, pin_ok, no_pin_mode=self.no_pin_mode
        )
        if degradation:
            decision = dataclasses.replace(decision, degradation=degradation)
        return decision
