"""The P2Auth facade: the public API of the reproduction.

:class:`P2Auth` ties the whole Fig. 4 workflow together — PIN storage
and verification, the preprocessing pipeline, enrollment, and
authentication with results integration. A typical session::

    auth = P2Auth(pin="1628")
    auth.enroll(my_trials, third_party_trials)
    decision = auth.authenticate(probe_trial)

Since the stage refactor, P2Auth holds no pipeline logic of its own: it
verifies the PIN and hands the probe to a cached
:class:`~repro.core.stages.AuthPipeline` — the same stage objects that
drive the session manager, the streaming front-end, and the evaluation
harness.
"""

from __future__ import annotations

import threading
from typing import List, Optional, Sequence

from ..config import PipelineConfig
from ..errors import EnrollmentError
from ..features import warm_engine
from ..types import PinEntryTrial
from .degradation import DegradationPolicy
from .enrollment import (
    EnrolledModels,
    EnrollmentOptions,
    NegativeBank,
    enroll_models,
)
from .hotpath import HotAuthPipeline
from .pin import PinVerifier
from .stages import AuthDecision, AuthPipeline


class P2Auth:
    """Two-factor authenticator: PIN + keystroke-induced PPG.

    Args:
        pin: the user's PIN, or ``None`` for the NO-PIN mode in which
            the keystroke pattern alone authenticates (Section
            IV-B.2.6).
        pipeline_config: signal-processing constants (paper defaults).
        options: enrollment options (privacy boost, feature method...).
        salt: fixed PIN-hash salt for deterministic tests.
        policy: graceful-degradation policy applied to every probe
            trial before preprocessing (gap repair, channel fallback,
            quality gate — see :mod:`repro.core.degradation`).
            ``None`` disables the ladder: trials are scored as-is, the
            pre-policy behaviour.
    """

    def __init__(
        self,
        pin: Optional[str] = None,
        pipeline_config: Optional[PipelineConfig] = None,
        options: Optional[EnrollmentOptions] = None,
        salt: Optional[bytes] = None,
        policy: Optional[DegradationPolicy] = None,
    ) -> None:
        self._pin = PinVerifier(pin, salt=salt)
        self._config = (
            pipeline_config if pipeline_config is not None else PipelineConfig()
        )
        self._options = options if options is not None else EnrollmentOptions()
        self._policy = policy
        # Lazy engine builds are double-checked against this lock; the
        # unlocked fast-path reads in `pipeline`/`hot_pipeline` are the
        # deliberate (suppressed) half of that pattern.
        self._engine_lock = threading.Lock()
        self._models: Optional[EnrolledModels] = None  # guarded-by: _engine_lock
        self._stage_pipeline: Optional[AuthPipeline] = None  # guarded-by: _engine_lock
        self._hot_pipeline: Optional[HotAuthPipeline] = None  # guarded-by: _engine_lock
        # Move the one-off C-kernel compile/load off the request path:
        # constructing an authenticator is the natural "service starting"
        # moment, authenticate() is not.
        warm_engine()

    @property
    def no_pin_mode(self) -> bool:
        """Whether this authenticator runs without a fixed PIN."""
        return not self._pin.has_pin

    @property
    def enrolled(self) -> bool:
        """Whether :meth:`enroll` has completed."""
        # reprolint: disable-next=RL010 -- lone reference read; enroll publishes atomically
        return self._models is not None

    @property
    def models(self) -> EnrolledModels:
        """The trained models (raises before enrollment)."""
        # reprolint: disable-next=RL010 -- lone reference read; enroll publishes atomically
        models = self._models
        if models is None:
            raise EnrollmentError("no user is enrolled")
        return models

    @property
    def config(self) -> PipelineConfig:
        """The pipeline configuration in effect."""
        return self._config

    @property
    def options(self) -> EnrollmentOptions:
        """The enrollment options in effect."""
        return self._options

    @property
    def policy(self) -> Optional[DegradationPolicy]:
        """The degradation policy in effect (``None`` = disabled)."""
        return self._policy

    @property
    def pipeline(self) -> AuthPipeline:
        """The staged engine this authenticator runs (raises before
        enrollment). Rebuilt automatically when the models change
        (re-enrollment, archive load)."""
        # Double-checked lazy build: the unlocked read is safe because
        # assignment publishes a fully constructed pipeline atomically.
        # reprolint: disable-next=RL010 -- deliberate unlocked fast path
        models = self._models
        if models is None:
            raise EnrollmentError("enroll a user before authenticating")
        # reprolint: disable-next=RL010 -- deliberate unlocked fast path
        pipeline = self._stage_pipeline
        if pipeline is not None and pipeline.models is models:
            return pipeline
        with self._engine_lock:
            models = self._models
            if models is None:  # pragma: no cover - raced with un-enroll
                raise EnrollmentError("enroll a user before authenticating")
            if (
                self._stage_pipeline is None
                or self._stage_pipeline.models is not models
            ):
                self._stage_pipeline = AuthPipeline(
                    models,
                    config=self._config,
                    policy=self._policy,
                    no_pin_mode=self.no_pin_mode,
                )
            return self._stage_pipeline

    @property
    def hot_pipeline(self) -> HotAuthPipeline:
        """The fused low-latency engine (raises before enrollment).

        Bit-identical to :attr:`pipeline` decision-for-decision; rebuilt
        automatically when the models change, like the staged one.
        """
        # reprolint: disable-next=RL010 -- deliberate unlocked fast path
        models = self._models
        if models is None:
            raise EnrollmentError("enroll a user before authenticating")
        # reprolint: disable-next=RL010 -- deliberate unlocked fast path
        pipeline = self._hot_pipeline
        if pipeline is not None and pipeline.models is models:
            return pipeline
        with self._engine_lock:
            models = self._models
            if models is None:  # pragma: no cover - raced with un-enroll
                raise EnrollmentError("enroll a user before authenticating")
            if (
                self._hot_pipeline is None
                or self._hot_pipeline.models is not models
            ):
                self._hot_pipeline = HotAuthPipeline(
                    models,
                    config=self._config,
                    policy=self._policy,
                    no_pin_mode=self.no_pin_mode,
                )
            return self._hot_pipeline

    def warmup(self, signal_lengths: Sequence[int] = ()) -> bool:
        """Pay one-off costs now so the first authenticate call doesn't.

        Delegates to :meth:`HotAuthPipeline.warmup` once a user is
        enrolled (C-kernel plans, SG coefficients, optional detrend
        factorizations for the given signal lengths); before enrollment
        only the feature engine is warmed. Idempotent: a second call
        with the same arguments does no work and returns False.
        """
        # reprolint: disable-next=RL010 -- lone reference read; enroll publishes atomically
        if self._models is None:
            warm_engine()
            return False
        return self.hot_pipeline.warmup(signal_lengths)

    def enroll(
        self,
        legit_trials: Sequence[PinEntryTrial],
        third_party_trials: Sequence[PinEntryTrial],
        shared_negatives: Optional[NegativeBank] = None,
    ) -> "P2Auth":
        """Enroll a user from their trials plus the third-party store.

        Args:
            legit_trials: the enrolling user's PIN entries.
            third_party_trials: negative samples from other people
                stored on the device (paper default: 100). Ignored when
                ``shared_negatives`` is given.
            shared_negatives: a pre-built
                :class:`~repro.core.enrollment.NegativeBank`; skips the
                store-side preprocessing and feature extraction.
        """
        models = enroll_models(
            legit_trials,
            third_party_trials,
            self._config,
            self._options,
            shared_negatives=shared_negatives,
        )
        with self._engine_lock:
            self._models = models
            self._stage_pipeline = None
            self._hot_pipeline = None
        return self

    def _pin_verdict(
        self, trial: PinEntryTrial, claimed_pin: Optional[str]
    ) -> Optional[bool]:
        if self.no_pin_mode:
            return None
        entered = claimed_pin if claimed_pin is not None else trial.pin
        return self._pin.verify(entered)

    def authenticate(
        self,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
        profile: bool = False,
    ) -> AuthDecision:
        """Authenticate one PIN-entry trial.

        Args:
            trial: the probe trial.
            claimed_pin: the PIN the typist entered; defaults to the
                digits recorded in the trial.
            profile: attach per-stage wall times to the decision
                (``AuthDecision.stage_timings``); observability only,
                the decision itself is unchanged.

        Returns:
            The authentication decision.

        Raises:
            QualityError: when a degradation policy is set and the
                trial is too damaged to score (gap beyond the repair
                budget, too few usable channels, failed quality gate).
        """
        return self.pipeline.run(
            [trial], [self._pin_verdict(trial, claimed_pin)], profile=profile
        )[0]

    def authenticate_fast(
        self,
        trial: PinEntryTrial,
        claimed_pin: Optional[str] = None,
    ) -> AuthDecision:
        """Authenticate one trial on the fused low-latency path.

        Bit-identical to :meth:`authenticate` (same decision fields,
        same exceptions — pinned by ``tests/test_stage_parity.py``) but
        runs :class:`~repro.core.hotpath.HotAuthPipeline`: no
        intermediate stage artifacts, preallocated scratch buffers, and
        the pre-marshalled C-kernel call. Call :meth:`warmup` first to
        keep one-off costs out of the request; see
        ``docs/performance.md`` for the latency budget.
        """
        return self.hot_pipeline.authenticate(
            trial, self._pin_verdict(trial, claimed_pin)
        )

    def authenticate_many(
        self,
        trials: Sequence[PinEntryTrial],
        claimed_pins: Optional[Sequence[Optional[str]]] = None,
        profile: bool = False,
    ) -> List[AuthDecision]:
        """Authenticate a batch of probe trials in one pipeline pass.

        Decision-for-decision identical to calling :meth:`authenticate`
        in a loop, but the preprocessing runs batched (shared-shape
        trials detrend as one banded solve).

        Args:
            trials: the probe trials.
            claimed_pins: entered PINs, aligned with ``trials``; each
                ``None`` entry defaults to that trial's recorded digits.
            profile: attach per-stage wall times to every decision of
                the batch (shared timings; observability only).
        """
        if claimed_pins is None:
            claimed_pins = [None] * len(trials)
        if len(claimed_pins) != len(trials):
            raise EnrollmentError(
                f"got {len(trials)} trials but {len(claimed_pins)} PINs"
            )
        verdicts = [
            self._pin_verdict(trial, pin)
            for trial, pin in zip(trials, claimed_pins)
        ]
        return self.pipeline.run(trials, verdicts, profile=profile)
