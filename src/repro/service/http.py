"""Stdlib ASGI adapter and a minimal asyncio HTTP/1.1 server.

:func:`make_app` wraps an :class:`~repro.service.core.AuthService` in a
plain ASGI 3 application — any ASGI server (uvicorn, hypercorn) can
host it, but none is required: :func:`serve` runs the same app on a
small ``asyncio.start_server`` HTTP/1.1 loop with keep-alive, which is
what ``python -m repro serve`` and the load harness use.

Routes (all bodies JSON):

========  =============================  =======================================
method    path                           action
========  =============================  =======================================
GET       /v1/health                     liveness probe
POST      /v1/enroll/begin               open a single-use enrollment window
POST      /v1/enroll/complete            PIN proof + trials -> train templates
POST      /v1/auth                       one authentication attempt
GET       /v1/session/{user_id}          session/ladder state query
POST      /v1/session/{user_id}/unlock   fallback-auth unlock
GET       /v1/admin/stats                service + registry observability
GET       /v1/admin/users                enrolled user ids
========  =============================  =======================================

Error contract: every :class:`~repro.errors.P2AuthError` maps through
the one canonical table in :mod:`repro.errors` — the body is
``{"error": {"code": ..., "message": ...}}`` with the class's stable
``code``, the status comes from :func:`~repro.errors.http_status_for`,
and throttling responses carry ``Retry-After`` when
:func:`~repro.errors.retry_after_s` yields a finite delay.
"""

from __future__ import annotations

import asyncio
import json
import math
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from ..errors import (
    P2AuthError,
    ProtocolError,
    http_status_for,
    retry_after_s,
)
from .core import AuthService
from .protocol import AuthRequest, EnrollBeginRequest, EnrollCompleteRequest

#: Upper bound on accepted request bodies (enrollment trials are the
#: largest legitimate payload; a 10-trial batch is well under this).
MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {  # concurrency: immutable-after-init
    200: "OK",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class _HttpResult:
    """One computed response: status, JSON-serializable body, headers."""

    __slots__ = ("status", "body", "headers")

    def __init__(
        self,
        status: int,
        body: Any,
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> None:
        self.status = status
        self.body = body
        self.headers = headers if headers is not None else []


def _error_result(err: P2AuthError) -> _HttpResult:
    headers: List[Tuple[str, str]] = []
    delay = retry_after_s(err)
    if delay is not None:
        headers.append(("retry-after", str(max(1, math.ceil(delay)))))
    return _HttpResult(
        status=http_status_for(type(err)),
        body={"error": {"code": err.code, "message": str(err)}},
        headers=headers,
    )


async def _dispatch(
    service: AuthService, method: str, path: str, body: bytes
) -> _HttpResult:
    """Route one request. Raises nothing: errors become results."""
    try:
        return await _route(service, method, path, body)
    except P2AuthError as err:
        return _error_result(err)
    except Exception as err:  # noqa: BLE001 - the transport's last line
        # of defense: an unexpected fault must surface as a 500 with
        # the internal code, never tear down the connection loop.
        return _HttpResult(
            500,
            {
                "error": {
                    "code": "internal",
                    "message": f"{type(err).__name__}: {err}",
                }
            },
        )


def _parse_json(body: bytes, ctx: str) -> Any:
    if not body:
        raise ProtocolError(f"{ctx}: empty body; a JSON object is required")
    try:
        return json.loads(body)
    except ValueError:
        raise ProtocolError(f"{ctx}: body is not valid JSON") from None


async def _route(
    service: AuthService, method: str, path: str, body: bytes
) -> _HttpResult:
    if path == "/v1/health":
        if method != "GET":
            return _method_not_allowed("GET")
        return _HttpResult(200, {"status": "ok"})

    if path == "/v1/enroll/begin":
        if method != "POST":
            return _method_not_allowed("POST")
        req = EnrollBeginRequest.parse(_parse_json(body, "enroll/begin"))
        return _HttpResult(200, service.enroll_begin(req.user_id).to_wire())

    if path == "/v1/enroll/complete":
        if method != "POST":
            return _method_not_allowed("POST")
        creq = EnrollCompleteRequest.parse(
            _parse_json(body, "enroll/complete")
        )
        return _HttpResult(200, (await service.enroll_complete(creq)).to_wire())

    if path == "/v1/auth":
        if method != "POST":
            return _method_not_allowed("POST")
        areq = AuthRequest.parse(_parse_json(body, "auth"))
        return _HttpResult(200, (await service.authenticate(areq)).to_wire())

    if path.startswith("/v1/session/"):
        rest = path[len("/v1/session/") :]
        if rest.endswith("/unlock"):
            if method != "POST":
                return _method_not_allowed("POST")
            user_id = rest[: -len("/unlock")]
            await service.unlock(user_id)
            return _HttpResult(200, {"user_id": user_id, "unlocked": True})
        if "/" in rest or not rest:
            return _not_found(path)
        if method != "GET":
            return _method_not_allowed("GET")
        return _HttpResult(200, (await service.session_status(rest)).to_wire())

    if path == "/v1/admin/stats":
        if method != "GET":
            return _method_not_allowed("GET")
        return _HttpResult(200, service.stats())

    if path == "/v1/admin/users":
        if method != "GET":
            return _method_not_allowed("GET")
        return _HttpResult(200, {"users": service.list_users()})

    return _not_found(path)


def _not_found(path: str) -> _HttpResult:
    return _HttpResult(
        404, {"error": {"code": "not_found", "message": f"no route {path!r}"}}
    )


def _method_not_allowed(allowed: str) -> _HttpResult:
    return _HttpResult(
        405,
        {"error": {"code": "method_not_allowed", "message": f"use {allowed}"}},
        headers=[("allow", allowed)],
    )


# ---------------------------------------------------------------------------
# ASGI 3 application
# ---------------------------------------------------------------------------


def make_app(
    service: AuthService,
) -> Callable[[Dict[str, Any], Callable, Callable], Awaitable[None]]:
    """An ASGI 3 app over ``service`` (http + lifespan scopes)."""

    async def app(
        scope: Dict[str, Any],
        receive: Callable[[], Awaitable[Dict[str, Any]]],
        send: Callable[[Dict[str, Any]], Awaitable[None]],
    ) -> None:
        if scope["type"] == "lifespan":
            while True:
                message = await receive()
                if message["type"] == "lifespan.startup":
                    await send({"type": "lifespan.startup.complete"})
                elif message["type"] == "lifespan.shutdown":
                    await send({"type": "lifespan.shutdown.complete"})
                    return
            return
        if scope["type"] != "http":
            raise RuntimeError(f"unsupported ASGI scope {scope['type']!r}")

        chunks: List[bytes] = []
        total = 0
        too_large = False
        while True:
            message = await receive()
            if message["type"] == "http.disconnect":
                return
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > MAX_BODY_BYTES:
                too_large = True
            elif chunk:
                chunks.append(chunk)
            if not message.get("more_body", False):
                break

        if too_large:
            result = _HttpResult(
                413,
                {
                    "error": {
                        "code": "payload_too_large",
                        "message": f"body exceeds {MAX_BODY_BYTES} bytes",
                    }
                },
            )
        else:
            result = await _dispatch(
                service, scope["method"].upper(), scope["path"], b"".join(chunks)
            )

        payload = json.dumps(result.body).encode("utf-8")
        headers = [
            (b"content-type", b"application/json"),
            (b"content-length", str(len(payload)).encode("ascii")),
        ] + [(k.encode("ascii"), v.encode("ascii")) for k, v in result.headers]
        await send(
            {
                "type": "http.response.start",
                "status": result.status,
                "headers": headers,
            }
        )
        await send({"type": "http.response.body", "body": payload})

    return app


# ---------------------------------------------------------------------------
# Minimal asyncio HTTP/1.1 server (no external dependencies)
# ---------------------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.IncompleteReadError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split(" ")
    if len(parts) != 3:
        raise ProtocolError(f"malformed request line {request_line!r}")
    method, target, _version = parts
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    if length < 0 or length > MAX_BODY_BYTES:
        raise ProtocolError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    path = target.split("?", 1)[0]
    return method, path, headers, body


def _render_response(result: _HttpResult, keep_alive: bool) -> bytes:
    payload = json.dumps(result.body).encode("utf-8")
    reason = _REASONS.get(result.status, "Unknown")
    lines = [
        f"HTTP/1.1 {result.status} {reason}",
        "content-type: application/json",
        f"content-length: {len(payload)}",
        f"connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{k}: {v}" for k, v in result.headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + payload


async def _handle_connection(
    service: AuthService,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    try:
        while True:
            try:
                request = await _read_request(reader)
            except ProtocolError as err:
                writer.write(_render_response(_error_result(err), False))
                await writer.drain()
                return
            except asyncio.IncompleteReadError:
                return
            if request is None:
                return
            method, path, headers, body = request
            result = await _dispatch(service, method.upper(), path, body)
            keep_alive = headers.get("connection", "keep-alive") != "close"
            writer.write(_render_response(result, keep_alive))
            await writer.drain()
            if not keep_alive:
                return
    except (ConnectionResetError, BrokenPipeError):
        return
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


async def serve(
    service: AuthService,
    host: str = "127.0.0.1",
    port: int = 8314,
    *,
    ready: Optional[asyncio.Event] = None,
) -> None:
    """Run the HTTP/1.1 server until cancelled.

    ``ready`` (when given) is set once the socket is listening — the
    hook tests and the load harness use it to avoid polling. Pass
    ``port=0`` to bind an ephemeral port; the bound address is stored
    on ``ready.address`` when an event is supplied.
    """
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )
    if ready is not None:
        # Stashing the bound (host, port) on the event is the simplest
        # handshake that needs no extra queue plumbing.
        ready.address = server.sockets[0].getsockname()[:2]  # type: ignore[attr-defined]
        ready.set()
    async with server:
        await server.serve_forever()


__all__ = ["MAX_BODY_BYTES", "make_app", "serve"]
