"""Wire protocol: typed requests/responses and PIN-proof crypto.

Everything that crosses a transport boundary is defined here — strict
parsers that reject unknown or mistyped fields with
:class:`~repro.errors.ProtocolError`, dataclasses for each endpoint's
request and response, and the stdlib-only crypto for the PIN-proof
protocol.

The PIN-proof protocol (adapted from the mesh-enrollment design the
roadmap names): the raw PIN **never appears in a request body**.

- *Enrollment*: the service creates a single-use, time-bounded window
  holding a freshly generated PIN and nonce. The PIN reaches the user
  out of band (the watch face — modelled as the ``enroll/begin``
  *response*, which flows to the trusted device, not over the probe
  path). The client proves knowledge with
  ``HMAC-SHA256(key=pin, msg=user_id || "|" || nonce)``.
- *Authentication*: the typed PIN again stays client-side; the request
  carries a fresh client nonce and the same HMAC shape. The service —
  which holds the enrolled PIN as the trust anchor, exactly like it
  holds the far more sensitive biometric templates — recomputes and
  compares in constant time, and rejects replayed nonces.
- *Trials on the wire* carry keystroke timing and PPG samples but no
  digit labels: the per-event keys are re-attached server-side from the
  PIN the proof was verified against, reconstructing a trial
  bit-identical to the device-side capture.
"""

from __future__ import annotations

import base64
import hashlib
import hmac
import secrets
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError
from ..types import (
    ChannelInfo,
    Hand,
    KeystrokeEvent,
    PinEntryTrial,
    PPGRecording,
    Wavelength,
)

#: Bytes of entropy in a wire nonce (hex-encoded to twice this length).
NONCE_BYTES = 16

#: Digits in a service-generated enrollment PIN.
DEFAULT_PIN_LENGTH = 4


# ---------------------------------------------------------------------------
# Crypto helpers (stdlib only)
# ---------------------------------------------------------------------------


def make_nonce() -> str:
    """A fresh unpredictable nonce, hex-encoded."""
    return secrets.token_hex(NONCE_BYTES)


def make_pin(length: int = DEFAULT_PIN_LENGTH) -> str:
    """A service-generated enrollment PIN of ``length`` digits."""
    if length < 1:
        raise ProtocolError(f"PIN length must be >= 1, got {length}")
    return "".join(secrets.choice("0123456789") for _ in range(length))


def _proof_msg(user_id: str, nonce: str) -> bytes:
    return user_id.encode("utf-8") + b"|" + nonce.encode("utf-8")


def pin_proof(pin: str, user_id: str, nonce: str) -> str:
    """``HMAC-SHA256(key=pin, msg=user_id || "|" || nonce)``, hex.

    Computed client-side from the typed PIN; verified server-side
    against the enrolled PIN. A passive observer of the wire sees only
    the proof and the single-use nonce, never the PIN.
    """
    return hmac.new(
        pin.encode("utf-8"), _proof_msg(user_id, nonce), hashlib.sha256
    ).hexdigest()


def verify_proof(pin: str, user_id: str, nonce: str, proof: str) -> bool:
    """Constant-time check of a claimed proof against ``pin``.

    Accepts either proof form — the canonical :func:`pin_proof` or the
    derived-key :func:`proof_from_key` shape — so clients that drop the
    raw PIN from memory (caching :func:`derive_proof_key` instead)
    authenticate identically. Both comparisons always run.
    """
    claimed = str(proof)
    direct = hmac.compare_digest(pin_proof(pin, user_id, nonce), claimed)
    derived = hmac.compare_digest(
        proof_from_key(derive_proof_key(pin, user_id), user_id, nonce),
        claimed,
    )
    return bool(direct | derived)


def derive_proof_key(pin: str, user_id: str) -> str:
    """A PIN-derived verifier for deployments that avoid storing PINs.

    ``HMAC-SHA256(key=pin, msg="p2auth/proof-key/" || user_id)``: a
    client that wants to drop the raw PIN from memory between entries
    can cache this instead and call :func:`proof_from_key`; both sides
    of the proof exchange then only ever handle the derived key.
    """
    return hmac.new(
        pin.encode("utf-8"),
        b"p2auth/proof-key/" + user_id.encode("utf-8"),
        hashlib.sha256,
    ).hexdigest()


def proof_from_key(proof_key: str, user_id: str, nonce: str) -> str:
    """The proof computed from a cached :func:`derive_proof_key` value."""
    return hmac.new(
        proof_key.encode("utf-8"), _proof_msg(user_id, nonce), hashlib.sha256
    ).hexdigest()


# ---------------------------------------------------------------------------
# Strict parsing helpers
# ---------------------------------------------------------------------------


def _require_mapping(obj: Any, ctx: str) -> Mapping[str, Any]:
    if not isinstance(obj, Mapping):
        raise ProtocolError(f"{ctx}: expected an object, got {type(obj).__name__}")
    return obj


def _reject_unknown(payload: Mapping[str, Any], allowed: Sequence[str], ctx: str) -> None:
    unknown = sorted(set(payload) - set(allowed))
    if unknown:
        raise ProtocolError(f"{ctx}: unknown field(s) {', '.join(unknown)}")


def _get(
    payload: Mapping[str, Any],
    name: str,
    types: tuple,
    ctx: str,
    required: bool = True,
    default: Any = None,
) -> Any:
    if name not in payload:
        if required:
            raise ProtocolError(f"{ctx}: missing required field {name!r}")
        return default
    value = payload[name]
    # bool is an int subclass; require explicit bools only where asked.
    if isinstance(value, bool) and bool not in types:
        raise ProtocolError(f"{ctx}: field {name!r} must not be a boolean")
    if not isinstance(value, types):
        names = "/".join(t.__name__ for t in types)
        raise ProtocolError(
            f"{ctx}: field {name!r} must be {names}, got {type(value).__name__}"
        )
    return value


def _get_str(payload: Mapping[str, Any], name: str, ctx: str) -> str:
    value = _get(payload, name, (str,), ctx)
    if not value:
        raise ProtocolError(f"{ctx}: field {name!r} must be non-empty")
    return value


# ---------------------------------------------------------------------------
# Trial encoding: keystroke timing + PPG samples, no digit labels
# ---------------------------------------------------------------------------


def encode_trial(trial: PinEntryTrial) -> Dict[str, Any]:
    """Serialize a trial for the wire, stripping the knowledge factor.

    The payload carries the PPG recording (float64 bytes, base64),
    per-event timing and hand, and the one-handed flag — but neither
    the typed PIN string nor the per-event digit labels.
    :func:`decode_trial` re-attaches digits server-side after the PIN
    proof verifies, making the round trip bit-identical.
    """
    if trial.accel is not None:
        raise ProtocolError(
            "accelerometer streams are not supported on the wire; "
            "strip the accel recording before encoding"
        )
    rec = trial.recording
    samples = np.ascontiguousarray(rec.samples, dtype=np.float64)
    return {
        "recording": {
            "fs": float(rec.fs),
            "start_time": float(rec.start_time),
            "shape": [int(samples.shape[0]), int(samples.shape[1])],
            "channels": [
                {"site": info.sensor_site, "wavelength": info.wavelength.value}
                for info in rec.channels
            ],
            "samples_b64": base64.b64encode(samples.tobytes()).decode("ascii"),
        },
        "events": [
            {
                "true_time": float(e.true_time),
                "reported_time": float(e.reported_time),
                "hand": e.hand.value,
            }
            for e in trial.events
        ],
        "one_handed": bool(trial.one_handed),
        "typist": int(trial.user_id),
    }


def _decode_recording(payload: Mapping[str, Any], ctx: str) -> PPGRecording:
    rec = _require_mapping(payload, ctx)
    _reject_unknown(
        rec, ("fs", "start_time", "shape", "channels", "samples_b64"), ctx
    )
    fs = float(_get(rec, "fs", (int, float), ctx))
    start_time = float(_get(rec, "start_time", (int, float), ctx))
    shape = _get(rec, "shape", (list, tuple), ctx)
    if len(shape) != 2 or not all(isinstance(d, int) and d > 0 for d in shape):
        raise ProtocolError(f"{ctx}: shape must be two positive integers")
    channels_raw = _get(rec, "channels", (list, tuple), ctx)
    channels: List[ChannelInfo] = []
    for i, ch in enumerate(channels_raw):
        cctx = f"{ctx}.channels[{i}]"
        ch = _require_mapping(ch, cctx)
        _reject_unknown(ch, ("site", "wavelength"), cctx)
        wavelength = _get_str(ch, "wavelength", cctx)
        try:
            wl = Wavelength(wavelength)
        except ValueError:
            raise ProtocolError(
                f"{cctx}: unknown wavelength {wavelength!r}"
            ) from None
        channels.append(
            ChannelInfo(sensor_site=_get(ch, "site", (int,), cctx), wavelength=wl)
        )
    encoded = _get_str(rec, "samples_b64", ctx)
    try:
        raw = base64.b64decode(encoded.encode("ascii"), validate=True)
    except Exception:
        raise ProtocolError(f"{ctx}: samples_b64 is not valid base64") from None
    expected = int(shape[0]) * int(shape[1]) * 8
    if len(raw) != expected:
        raise ProtocolError(
            f"{ctx}: payload holds {len(raw)} bytes but shape {tuple(shape)} "
            f"needs {expected}"
        )
    samples = (
        np.frombuffer(raw, dtype=np.float64)
        .reshape(int(shape[0]), int(shape[1]))
        .copy()
    )
    return PPGRecording(
        samples=samples, fs=fs, channels=tuple(channels), start_time=start_time
    )


def decode_trial(payload: Mapping[str, Any], pin: str) -> PinEntryTrial:
    """Reconstruct a :class:`PinEntryTrial` from a wire payload.

    ``pin`` supplies the digit labels the wire deliberately omits: the
    i-th event gets the i-th digit. Only called after the request's PIN
    proof verified against the same ``pin`` (or, on a failed proof,
    with the enrolled PIN purely to shape the rejected trial — the
    engine then short-circuits on the sentinel claim before any signal
    processing).

    Raises:
        ProtocolError: on any structural mismatch, including an event
            count that disagrees with the PIN length.
    """
    ctx = "trial"
    trial = _require_mapping(payload, ctx)
    _reject_unknown(
        trial, ("recording", "events", "one_handed", "typist"), ctx
    )
    recording = _decode_recording(
        _get(trial, "recording", (Mapping,), ctx), f"{ctx}.recording"
    )
    events_raw = _get(trial, "events", (list, tuple), ctx)
    if len(events_raw) != len(pin):
        raise ProtocolError(
            f"{ctx}: {len(events_raw)} keystroke events for a "
            f"{len(pin)}-digit PIN"
        )
    events: List[KeystrokeEvent] = []
    for i, (ev, digit) in enumerate(zip(events_raw, pin)):
        ectx = f"{ctx}.events[{i}]"
        ev = _require_mapping(ev, ectx)
        _reject_unknown(ev, ("true_time", "reported_time", "hand"), ectx)
        hand_raw = _get_str(ev, "hand", ectx)
        try:
            hand = Hand(hand_raw)
        except ValueError:
            raise ProtocolError(f"{ectx}: unknown hand {hand_raw!r}") from None
        events.append(
            KeystrokeEvent(
                key=digit,
                true_time=float(_get(ev, "true_time", (int, float), ectx)),
                reported_time=float(
                    _get(ev, "reported_time", (int, float), ectx)
                ),
                hand=hand,
            )
        )
    return PinEntryTrial(
        recording=recording,
        events=tuple(events),
        pin=pin,
        user_id=_get(trial, "typist", (int,), ctx, required=False, default=0),
        one_handed=_get(
            trial, "one_handed", (bool,), ctx, required=False, default=True
        ),
    )


# ---------------------------------------------------------------------------
# Request / response dataclasses
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EnrollBeginRequest:
    """Open a single-use enrollment window for ``user_id``."""

    user_id: str

    @classmethod
    def parse(cls, payload: Any) -> "EnrollBeginRequest":
        body = _require_mapping(payload, "enroll/begin")
        _reject_unknown(body, ("user_id",), "enroll/begin")
        return cls(user_id=_get_str(body, "user_id", "enroll/begin"))


@dataclass(frozen=True)
class EnrollBeginResponse:
    """The opened window. ``pin`` models the out-of-band watch display."""

    user_id: str
    pin: str
    nonce: str
    expires_at: float

    def to_wire(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "pin": self.pin,
            "nonce": self.nonce,
            "expires_at": self.expires_at,
        }


@dataclass(frozen=True)
class EnrollCompleteRequest:
    """Enrollment trials plus the PIN proof for an open window.

    ``trials`` stay as raw wire payloads here: digit labels can only be
    re-attached once the service has matched the window and verified
    the proof against its PIN.
    """

    user_id: str
    nonce: str
    proof: str
    trials: Tuple[Mapping[str, Any], ...]

    @classmethod
    def parse(cls, payload: Any) -> "EnrollCompleteRequest":
        ctx = "enroll/complete"
        body = _require_mapping(payload, ctx)
        _reject_unknown(body, ("user_id", "nonce", "proof", "trials"), ctx)
        trials = _get(body, "trials", (list, tuple), ctx)
        if not trials:
            raise ProtocolError(f"{ctx}: trials must be non-empty")
        return cls(
            user_id=_get_str(body, "user_id", ctx),
            nonce=_get_str(body, "nonce", ctx),
            proof=_get_str(body, "proof", ctx),
            trials=tuple(_require_mapping(t, f"{ctx}.trials") for t in trials),
        )


@dataclass(frozen=True)
class EnrollCompleteResponse:
    user_id: str
    enrolled: bool
    n_trials: int

    def to_wire(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "enrolled": self.enrolled,
            "n_trials": self.n_trials,
        }


@dataclass(frozen=True)
class AuthRequest:
    """One authentication attempt: a wire trial plus a fresh PIN proof."""

    user_id: str
    nonce: str
    proof: str
    trial: Mapping[str, Any]

    @classmethod
    def parse(cls, payload: Any) -> "AuthRequest":
        ctx = "auth"
        body = _require_mapping(payload, ctx)
        _reject_unknown(body, ("user_id", "nonce", "proof", "trial"), ctx)
        return cls(
            user_id=_get_str(body, "user_id", ctx),
            nonce=_get_str(body, "nonce", ctx),
            proof=_get_str(body, "proof", ctx),
            trial=_require_mapping(_get(body, "trial", (Mapping,), ctx), ctx),
        )


@dataclass(frozen=True)
class AuthResponse:
    """The engine's decision plus the session ladder after the attempt.

    Mirrors :class:`~repro.core.artifacts.AuthDecision` except for
    ``keys_checked``, which is deliberately withheld — per-key verdicts
    are labelled by PIN digits, and responses must not leak the
    knowledge factor any more than requests may.
    """

    user_id: str
    accepted: bool
    reason: str
    pin_ok: Optional[bool]
    input_case: Optional[str]
    scores: Tuple[float, ...] = field(default_factory=tuple)
    passes: Tuple[bool, ...] = field(default_factory=tuple)
    degradation: Tuple[Dict[str, str], ...] = field(default_factory=tuple)
    session_state: str = ""
    failures: int = 0
    retry_after_s: float = 0.0

    def to_wire(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "accepted": self.accepted,
            "reason": self.reason,
            "pin_ok": self.pin_ok,
            "input_case": self.input_case,
            "scores": list(self.scores),
            "passes": list(self.passes),
            "degradation": list(self.degradation),
            "session_state": self.session_state,
            "failures": self.failures,
            "retry_after_s": self.retry_after_s,
        }


@dataclass(frozen=True)
class SessionStatusResponse:
    """Queryable session/ladder state (no event-log parsing)."""

    user_id: str
    state: str
    authenticated: bool
    locked: bool
    failures: int
    max_failures: Optional[int]
    retry_after_s: Optional[float]

    def to_wire(self) -> Dict[str, Any]:
        return {
            "user_id": self.user_id,
            "state": self.state,
            "authenticated": self.authenticated,
            "locked": self.locked,
            "failures": self.failures,
            "max_failures": self.max_failures,
            "retry_after_s": self.retry_after_s,
        }


__all__ = [
    "AuthRequest",
    "AuthResponse",
    "DEFAULT_PIN_LENGTH",
    "EnrollBeginRequest",
    "EnrollBeginResponse",
    "EnrollCompleteRequest",
    "EnrollCompleteResponse",
    "NONCE_BYTES",
    "SessionStatusResponse",
    "decode_trial",
    "derive_proof_key",
    "encode_trial",
    "make_nonce",
    "make_pin",
    "pin_proof",
    "proof_from_key",
    "verify_proof",
]
