"""Transport-agnostic authentication service over the registry.

Three layers, each usable without the ones above it:

- :mod:`repro.service.core` — :class:`AuthService`, the async facade
  owning a :class:`~repro.core.registry.ModelRegistry` plus per-user
  :class:`~repro.core.session.SessionManager` slots, with striped
  per-user locks and a bounded thread pool offloading the sync engine
  (same-user requests serialize; cross-user requests run concurrently).
- :mod:`repro.service.protocol` — typed wire dataclasses with strict
  validation and the PIN-proof enrollment/authentication crypto
  (HMAC-SHA256 proofs, single-use time-bounded windows; the raw PIN
  never crosses the wire).
- :mod:`repro.service.http` — a stdlib ASGI adapter exposing enroll /
  authenticate / session / registry-admin / stats endpoints, plus a
  minimal asyncio HTTP/1.1 server (``python -m repro serve``).
"""

from .core import AuthService, EnrollmentWindow
from .http import make_app, serve
from .protocol import (
    AuthRequest,
    AuthResponse,
    EnrollBeginResponse,
    EnrollCompleteRequest,
    EnrollCompleteResponse,
    decode_trial,
    derive_proof_key,
    encode_trial,
    pin_proof,
    proof_from_key,
)

__all__ = [
    "AuthRequest",
    "AuthResponse",
    "AuthService",
    "EnrollBeginResponse",
    "EnrollCompleteRequest",
    "EnrollCompleteResponse",
    "EnrollmentWindow",
    "decode_trial",
    "derive_proof_key",
    "encode_trial",
    "make_app",
    "pin_proof",
    "proof_from_key",
    "serve",
]
