"""Transport-agnostic async service core over the model registry.

:class:`AuthService` is the facade every transport adapter (the stdlib
ASGI app, tests, the load harness) talks to. It owns:

- a :class:`~repro.core.registry.ModelRegistry` — the thread-safe
  template store and engine host;
- one :class:`~repro.core.session.SessionManager` per active user (the
  retry/lockout ladder), in an LRU of bounded size whose evictions
  carry the ladder over via
  :meth:`~repro.core.session.SessionManager.lockout_status` /
  ``restore_lockout`` — cycling other users through the service must
  never reset a lockout;
- the PIN-proof state: single-use time-bounded enrollment windows and
  per-user credentials (the enrolled PIN, held server-side as the trust
  anchor exactly like the far more sensitive biometric templates);
- striped per-user ``asyncio`` locks and a bounded thread pool: the
  sync engine runs off the event loop, same-user requests serialize
  (decisions bit-identical to a serial client), cross-user requests
  overlap.

Concurrency model: the service's own dicts and counters are touched
only from the event loop thread (single-loop service, the usual ASGI
shape); the engine objects it hands to pool threads are protected by
the stripe lock held across each offload, so no two pool threads ever
run the same user's session concurrently. The registry underneath
remains fully thread-safe on its own lock.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import math
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from ..core.enrollment import NegativeBank
from ..core.registry import ModelRegistry, _check_user_id
from ..core.session import LockoutStatus, RetryPolicy, SessionManager, SessionState
from ..errors import (
    ConfigurationError,
    ProofError,
    UnknownUserError,
)
from ..types import PinEntryTrial
from .protocol import (
    AuthRequest,
    AuthResponse,
    DEFAULT_PIN_LENGTH,
    EnrollBeginResponse,
    EnrollCompleteRequest,
    EnrollCompleteResponse,
    SessionStatusResponse,
    decode_trial,
    make_nonce,
    make_pin,
    verify_proof,
)

T = TypeVar("T")

#: A claimed PIN that can never verify (PinVerifier requires digits):
#: passed to the engine when the wire proof failed, so the decision is
#: the engine's own "PIN verification failed" short-circuit — produced
#: before any signal processing, bit-identical to a direct wrong-PIN
#: call — and the retry ladder advances normally.
_PIN_MISMATCH_SENTINEL = ""

#: Bound on the replayed-nonce memory (user_id, nonce) pairs.
_NONCE_CACHE_SIZE = 65536


@dataclass
class EnrollmentWindow:
    """One single-use, time-bounded PIN-proof enrollment window."""

    user_id: str
    pin: str
    nonce: str
    expires_at: float
    attempts_left: int

    def expired(self, now: float) -> bool:
        return now > self.expires_at


class AuthService:  # concurrency: thread-hostile
    """Async authentication service over a model registry.

    Drive from one event loop; the class is not thread-safe itself
    (its engine offloads are — see the module docstring).

    Args:
        registry: the template store. May be pre-populated (a packed
            population); users enrolled out-of-band become servable
            through :meth:`adopt_user`.
        third_party_trials: server-side negative corpus handed to every
            enrollment (negatives are a deployment asset and never
            cross the wire).
        shared_negatives: optional pre-fitted negative bank forwarded
            to enrollments.
        retry: the per-user retry/lockout ladder policy; ``None``
            disables backoff and lockout (unlimited retries).
        stripes: number of per-user lock stripes. Same-stripe users
            serialize; more stripes, more cross-user concurrency.
        max_workers: bound on the engine thread pool.
        session_capacity: live :class:`SessionManager` bound; evicted
            sessions persist their ladder snapshot.
        enroll_ttl_s: enrollment window lifetime, seconds.
        enroll_max_attempts: failed proofs before a window burns.
        pin_length: digits in service-generated enrollment PINs.
        clock: monotone seconds source (injectable for tests).
    """

    def __init__(
        self,
        registry: ModelRegistry,
        *,
        third_party_trials: Sequence[PinEntryTrial] = (),
        shared_negatives: Optional[NegativeBank] = None,
        retry: Optional[RetryPolicy] = RetryPolicy(),
        stripes: int = 64,
        max_workers: int = 4,
        session_capacity: int = 1024,
        enroll_ttl_s: float = 300.0,
        enroll_max_attempts: int = 3,
        pin_length: int = DEFAULT_PIN_LENGTH,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if stripes < 1:
            raise ConfigurationError(f"stripes must be >= 1, got {stripes}")
        if max_workers < 1:
            raise ConfigurationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        if session_capacity < 1:
            raise ConfigurationError(
                f"session_capacity must be >= 1, got {session_capacity}"
            )
        if enroll_ttl_s <= 0:
            raise ConfigurationError(
                f"enroll_ttl_s must be > 0, got {enroll_ttl_s}"
            )
        if enroll_max_attempts < 1:
            raise ConfigurationError(
                f"enroll_max_attempts must be >= 1, got {enroll_max_attempts}"
            )
        self._registry = registry
        self._third_party = tuple(third_party_trials)
        self._shared_negatives = shared_negatives
        self._retry = retry
        self._stripe_count = stripes
        self._session_capacity = session_capacity
        self._enroll_ttl_s = float(enroll_ttl_s)
        self._enroll_max_attempts = enroll_max_attempts
        self._pin_length = pin_length
        self._clock = clock
        self._max_workers = max_workers
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="p2auth-svc"
        )
        # Event-loop-only state (single-loop service; see module doc).
        self._stripes_loop: Optional[asyncio.AbstractEventLoop] = None
        self._stripes: List[asyncio.Lock] = []
        self._credentials: Dict[str, str] = {}
        self._windows: Dict[str, EnrollmentWindow] = {}
        self._sessions: "OrderedDict[str, SessionManager]" = OrderedDict()
        self._ladders: Dict[str, LockoutStatus] = {}
        self._seen_nonces: "OrderedDict[Tuple[str, str], None]" = OrderedDict()
        self._counters: Dict[str, int] = {
            "requests": 0,
            "accepted": 0,
            "rejected": 0,
            "quality_refused": 0,
            "proof_failures": 0,
            "throttled": 0,
            "enrollments": 0,
            "nonce_replays": 0,
            "session_evictions": 0,
        }

    # -- infrastructure ---------------------------------------------------

    @property
    def registry(self) -> ModelRegistry:
        """The underlying template registry."""
        return self._registry

    def close(self) -> None:
        """Shut down the engine thread pool (idempotent)."""
        self._pool.shutdown(wait=True)

    def _stripe(self, user_id: str) -> asyncio.Lock:
        """The asyncio lock serializing requests for ``user_id``.

        Stripes are rebuilt when the running loop changes (tests often
        run one ``asyncio.run`` per case): locks are bound to the loop
        that first acquires them and cannot migrate.
        """
        loop = asyncio.get_running_loop()
        if loop is not self._stripes_loop:
            self._stripes_loop = loop
            self._stripes = [
                asyncio.Lock() for _ in range(self._stripe_count)
            ]
        digest = hashlib.blake2b(
            user_id.encode("utf-8"), digest_size=8
        ).digest()
        return self._stripes[int.from_bytes(digest, "big") % self._stripe_count]

    async def _offload(self, fn: Callable[[], T]) -> T:
        """Run sync engine work on the bounded pool, off the event loop."""
        return await asyncio.get_running_loop().run_in_executor(self._pool, fn)

    def _check_nonce(self, user_id: str, nonce: str) -> None:
        key = (user_id, nonce)
        if key in self._seen_nonces:
            self._counters["nonce_replays"] += 1
            raise ProofError("nonce already used; proofs are single-use")
        self._seen_nonces[key] = None
        while len(self._seen_nonces) > _NONCE_CACHE_SIZE:
            self._seen_nonces.popitem(last=False)

    # -- enrollment (PIN-proof protocol) ----------------------------------

    def enroll_begin(self, user_id: str) -> EnrollBeginResponse:
        """Open a single-use enrollment window for ``user_id``.

        Generates the PIN and nonce server-side. The response is the
        out-of-band channel (the watch face shows the PIN to the user);
        the subsequent ``enroll/complete`` request only ever carries the
        HMAC proof. Re-opening a window replaces any previous one for
        the same user. Re-enrollment of an existing user is allowed —
        completing the new window replaces their templates.
        """
        _check_user_id(user_id)
        window = EnrollmentWindow(
            user_id=user_id,
            pin=make_pin(self._pin_length),
            nonce=make_nonce(),
            expires_at=self._clock() + self._enroll_ttl_s,
            attempts_left=self._enroll_max_attempts,
        )
        self._windows[user_id] = window
        return EnrollBeginResponse(
            user_id=user_id,
            pin=window.pin,
            nonce=window.nonce,
            expires_at=window.expires_at,
        )

    async def enroll_complete(
        self, request: EnrollCompleteRequest
    ) -> EnrollCompleteResponse:
        """Verify the PIN proof and enroll the submitted trials.

        The window is single-use: consumed on success, burned after
        ``enroll_max_attempts`` failed proofs, and refused once its
        TTL elapsed. Enrollment (the expensive model training) runs on
        the thread pool under the user's stripe lock.
        """
        user_id = request.user_id
        _check_user_id(user_id)
        async with self._stripe(user_id):
            window = self._windows.get(user_id)
            if window is None:
                raise ProofError(f"no open enrollment window for {user_id!r}")
            if window.expired(self._clock()):
                del self._windows[user_id]
                raise ProofError("enrollment window expired; begin again")
            if not hmac.compare_digest(window.nonce, request.nonce):
                raise ProofError("enrollment nonce mismatch")
            if not verify_proof(
                window.pin, user_id, window.nonce, request.proof
            ):
                window.attempts_left -= 1
                self._counters["proof_failures"] += 1
                if window.attempts_left <= 0:
                    del self._windows[user_id]
                    raise ProofError(
                        "PIN proof rejected; enrollment window burned"
                    )
                raise ProofError("PIN proof rejected")

            pin = window.pin
            trials = [decode_trial(t, pin) for t in request.trials]

            def train() -> None:
                self._registry.enroll(
                    user_id,
                    pin,
                    trials,
                    self._third_party,
                    shared_negatives=self._shared_negatives,
                )

            await self._offload(train)
            # Success consumes the window and rotates credentials;
            # any previous session belongs to the replaced templates.
            del self._windows[user_id]
            self._credentials[user_id] = pin
            self._sessions.pop(user_id, None)
            self._ladders.pop(user_id, None)
            self._counters["enrollments"] += 1
            return EnrollCompleteResponse(
                user_id=user_id, enrolled=True, n_trials=len(trials)
            )

    def adopt_user(self, user_id: str, pin: str) -> None:
        """Register credentials for a user enrolled out-of-band.

        The trusted-side bootstrap for pre-materialized registries
        (bulk-enrolled packed populations): the operator that built the
        templates also knows each user's PIN and hands it to the
        service directly — never over the wire path.
        """
        _check_user_id(user_id)
        if user_id not in self._registry:
            raise UnknownUserError(
                f"cannot adopt {user_id!r}: not in the registry"
            )
        self._credentials[user_id] = pin

    # -- authentication ---------------------------------------------------

    async def _session_for(self, user_id: str) -> SessionManager:
        """The user's live session, creating (and warming) it on demand.

        Registry misses load from the backend on the thread pool. A new
        session restores any ladder snapshot saved when a previous one
        was evicted, then gets transport-attested wear (the HTTP
        deployment trusts the watch's on-wrist signal; a restored
        lockout stays locked).
        """
        session = self._sessions.get(user_id)
        if session is not None:
            self._sessions.move_to_end(user_id)
            return session
        try:
            auth = await self._offload(lambda: self._registry.get(user_id))
        except KeyError:
            raise UnknownUserError(f"unknown user {user_id!r}") from None
        session = SessionManager(auth, retry=self._retry)
        snapshot = self._ladders.pop(user_id, None)
        if snapshot is not None:
            session.restore_lockout(snapshot)
        session.assume_worn()
        # reprolint: disable-next=RL011 -- the per-user stripe lock serializes every access; a session never sees two threads at once
        self._sessions[user_id] = session
        while len(self._sessions) > self._session_capacity:
            evicted_id, evicted = self._sessions.popitem(last=False)
            self._ladders[evicted_id] = evicted.lockout_status()
            self._counters["session_evictions"] += 1
        return session

    async def authenticate(self, request: AuthRequest) -> AuthResponse:
        """Run one wire authentication attempt end to end.

        Proof verification, trial reconstruction, and the engine call
        all happen under the user's stripe lock, so same-user attempts
        serialize (ladder order is well-defined) while other users
        proceed on their own stripes. The engine decision is the
        registry's own — bit-identical to a direct
        :meth:`ModelRegistry.authenticate` call with the same trial.
        """
        user_id = request.user_id
        _check_user_id(user_id)
        self._counters["requests"] += 1
        async with self._stripe(user_id):
            pin = self._credentials.get(user_id)
            if pin is None:
                if user_id in self._registry:
                    raise ProofError(
                        f"no service credentials for {user_id!r}; "
                        "enroll through the service or adopt_user()"
                    )
                raise UnknownUserError(f"unknown user {user_id!r}")
            self._check_nonce(user_id, request.nonce)
            proof_ok = verify_proof(pin, user_id, request.nonce, request.proof)
            if not proof_ok:
                self._counters["proof_failures"] += 1
            session = await self._session_for(user_id)
            claimed = pin if proof_ok else _PIN_MISMATCH_SENTINEL
            now = self._clock()
            wire_trial = request.trial

            def attempt():
                trial = decode_trial(wire_trial, pin)
                return session.submit_entry(trial, claimed_pin=claimed, now=now)

            try:
                decision = await self._offload(attempt)
            except Exception as err:
                self._count_refusal(err)
                raise
            if decision.accepted:
                self._counters["accepted"] += 1
            else:
                self._counters["rejected"] += 1
            status = session.lockout_status(now)
            return AuthResponse(
                user_id=user_id,
                accepted=decision.accepted,
                reason=decision.reason,
                pin_ok=decision.pin_ok,
                input_case=(
                    None
                    if decision.input_case is None
                    else decision.input_case.value
                ),
                scores=tuple(decision.scores),
                passes=tuple(decision.passes),
                degradation=tuple(
                    {
                        "stage": e.stage,
                        "action": e.action,
                        "detail": e.detail,
                    }
                    for e in decision.degradation
                ),
                session_state=session.state.value,
                failures=status.failures,
                retry_after_s=(
                    0.0
                    if not math.isfinite(status.retry_after_s)
                    else status.retry_after_s
                ),
            )

    def _count_refusal(self, err: Exception) -> None:
        from ..errors import BackoffError, LockoutError, QualityError

        if isinstance(err, QualityError):
            self._counters["quality_refused"] += 1
        elif isinstance(err, (BackoffError, LockoutError)):
            self._counters["throttled"] += 1

    # -- session & admin --------------------------------------------------

    async def session_status(self, user_id: str) -> SessionStatusResponse:
        """The user's session/ladder state without submitting an entry."""
        _check_user_id(user_id)
        async with self._stripe(user_id):
            session = self._sessions.get(user_id)
            if session is not None:
                status = session.lockout_status(self._clock())
                return SessionStatusResponse(
                    user_id=user_id,
                    state=session.state.value,
                    authenticated=session.authenticated,
                    locked=status.locked,
                    failures=status.failures,
                    max_failures=status.max_failures,
                    retry_after_s=(
                        None
                        if not math.isfinite(status.retry_after_s)
                        else status.retry_after_s
                    ),
                )
            snapshot = self._ladders.get(user_id)
            if snapshot is None and user_id not in self._registry:
                raise UnknownUserError(f"unknown user {user_id!r}")
            locked = snapshot.locked if snapshot is not None else False
            return SessionStatusResponse(
                user_id=user_id,
                state=(
                    SessionState.LOCKED.value
                    if locked
                    else SessionState.OFF_WRIST.value
                ),
                authenticated=False,
                locked=locked,
                failures=snapshot.failures if snapshot is not None else 0,
                max_failures=(
                    None if self._retry is None else self._retry.max_failures
                ),
                retry_after_s=None if locked else 0.0,
            )

    async def unlock(self, user_id: str, reason: str = "admin unlock") -> None:
        """Clear a lockout through the fallback authentication path."""
        _check_user_id(user_id)
        async with self._stripe(user_id):
            self._ladders.pop(user_id, None)
            session = self._sessions.get(user_id)
            if session is None:
                if user_id not in self._registry:
                    raise UnknownUserError(f"unknown user {user_id!r}")
                return
            session.unlock(reason)
            session.assume_worn("re-attested after unlock")

    def stats(self) -> Dict[str, Any]:
        """Service + registry observability snapshot (admin endpoint)."""
        registry = self._registry.describe()
        registry["warm_users"] = len(self._registry.warm_users())
        return {
            "registry": registry,
            "service": dict(self._counters),
            "sessions": {
                "live": len(self._sessions),
                "capacity": self._session_capacity,
                "saved_ladders": len(self._ladders),
            },
            "config": {
                "stripes": self._stripe_count,
                "max_workers": self._max_workers,
                "retry": (
                    None
                    if self._retry is None
                    else {
                        "max_failures": self._retry.max_failures,
                        "backoff_base_s": self._retry.backoff_base_s,
                        "backoff_factor": self._retry.backoff_factor,
                        "max_backoff_s": self._retry.max_backoff_s,
                    }
                ),
                "enroll_ttl_s": self._enroll_ttl_s,
            },
        }

    def list_users(self) -> List[str]:
        """All user ids the registry knows (admin endpoint)."""
        return self._registry.list_users()

    async def warm(self, user_ids: Sequence[str]) -> int:
        """Load the given users into registry memory (cold→warm split).

        Returns the number of users now warm. Loads fan out over the
        engine pool; unknown ids raise :class:`UnknownUserError`.
        """

        def load(uid: str) -> None:
            try:
                self._registry.get(uid)
            except KeyError:
                raise UnknownUserError(f"unknown user {uid!r}") from None

        await asyncio.gather(
            *(self._offload(lambda uid=uid: load(uid)) for uid in user_ids)
        )
        return len(self._registry.warm_users())


__all__ = ["AuthService", "EnrollmentWindow"]
