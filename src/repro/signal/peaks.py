"""Local extreme-point search.

The calibration module's candidate set ``S`` (Eq. 1) is the set of
local maxima and minima of the Savitzky-Golay-filtered signal within
the search window around the phone-reported keystroke time.
"""

from __future__ import annotations

import numpy as np

from ..errors import SignalError


def local_extrema(samples: np.ndarray) -> np.ndarray:
    """Indices of strict local maxima and minima of a 1-D signal.

    A point is an extremum if it is strictly greater (or strictly
    smaller) than both neighbours; plateau interiors are skipped, and
    the first/last samples are always included as window-edge
    candidates so a monotone window still yields a usable set.

    Returns:
        Sorted array of candidate indices.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    n = samples.size
    if n == 0:
        raise SignalError("received an empty signal")
    if n <= 2:
        return np.arange(n)

    interior = samples[1:-1]
    left = samples[:-2]
    right = samples[2:]
    is_max = (interior > left) & (interior > right)
    is_min = (interior < left) & (interior < right)
    candidates = np.flatnonzero(is_max | is_min) + 1
    return np.unique(np.concatenate([[0], candidates, [n - 1]]))
