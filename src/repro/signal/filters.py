"""Smoothing filters for PPG preprocessing.

The paper uses a median filter for noise removal (non-linear, preserves
waveform detail while killing impulse noise from the low-cost front
end) and a Savitzky-Golay filter before the extreme-point search in the
calibration module (removes locally unimportant fluctuation while
retaining the wave's shape).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from scipy import signal as sps
from scipy.ndimage import convolve1d

from ..errors import ConfigurationError, SignalError

try:  # scipy private edge helper; absence demotes the cached SG path
    from scipy.signal._savitzky_golay import _fit_edges_polyfit
except ImportError:  # pragma: no cover - depends on scipy version
    _fit_edges_polyfit = None


def _check_1d(samples: np.ndarray, name: str) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"{name} expects a 1-D signal, got shape {samples.shape}")
    if samples.size == 0:
        raise SignalError(f"{name} received an empty signal")
    return samples


def median_filter(samples: np.ndarray, kernel: int = 5) -> np.ndarray:
    """Median-filter a 1-D signal (the Noise Removal module).

    Args:
        samples: input signal.
        kernel: odd window length.

    Returns:
        Filtered signal of the same length.
    """
    samples = _check_1d(samples, "median_filter")
    if kernel < 1 or kernel % 2 == 0:
        raise ConfigurationError(f"median kernel must be a positive odd int: {kernel}")
    if kernel == 1 or samples.size < kernel:
        return samples.copy()
    return sps.medfilt(samples, kernel_size=kernel)


def median_filter_multi(samples: np.ndarray, kernel: int = 5) -> np.ndarray:
    """Median-filter every row of a 2-D ``(channels, n)`` array at once.

    Produces exactly the same output as calling :func:`median_filter`
    per row (``scipy.signal.medfilt`` zero-pads the edges; so does the
    zero-padded sliding window here — medians of identical value sets
    are identical), but computes all channels in one vectorized
    ``np.median`` over a strided window view instead of a Python loop.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise SignalError(
            f"median_filter_multi expects a 2-D signal, got shape {samples.shape}"
        )
    if samples.shape[1] == 0:
        raise SignalError("median_filter_multi received an empty signal")
    if kernel < 1 or kernel % 2 == 0:
        raise ConfigurationError(f"median kernel must be a positive odd int: {kernel}")
    if kernel == 1 or samples.shape[1] < kernel:
        return samples.copy()
    half = kernel // 2
    padded = np.pad(samples, ((0, 0), (half, half)), mode="constant")
    windows = np.lib.stride_tricks.sliding_window_view(padded, kernel, axis=1)
    return np.median(windows, axis=-1)


def _median3_rows(
    padded: np.ndarray,
    n: int,
    t0: np.ndarray,
    t1: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Rowwise 3-point running median via the min/max exchange network."""
    a = padded[:, 0:n]
    b = padded[:, 1 : n + 1]
    c = padded[:, 2 : n + 2]
    np.minimum(a, b, out=t0)
    np.maximum(a, b, out=t1)
    np.minimum(t1, c, out=t1)
    return np.maximum(t0, t1, out=out)


def _median5_rows(
    padded: np.ndarray,
    n: int,
    t0: np.ndarray,
    t1: np.ndarray,
    t2: np.ndarray,
    t3: np.ndarray,
    out: np.ndarray,
) -> np.ndarray:
    """Rowwise 5-point running median via the min/max exchange network.

    ``med5(a..e) = med3(max(min(a,b), min(c,d)), min(max(a,b), max(c,d)), e)``
    — ten elementwise min/max passes instead of a full ``np.median``
    sort. Selection networks return one of the input *values*, exactly
    as a sorting median of five does, so the result is value-identical
    to ``np.median`` on the same windows.
    """
    a = padded[:, 0:n]
    b = padded[:, 1 : n + 1]
    c = padded[:, 2 : n + 2]
    d = padded[:, 3 : n + 3]
    e = padded[:, 4 : n + 4]
    np.minimum(a, b, out=t0)
    np.maximum(a, b, out=t1)
    np.minimum(c, d, out=t2)
    np.maximum(c, d, out=t3)
    np.maximum(t0, t2, out=t0)  # j = max(min(a,b), min(c,d))
    np.minimum(t1, t3, out=t1)  # k = min(max(a,b), max(c,d))
    np.minimum(t0, t1, out=t2)
    np.maximum(t0, t1, out=t3)
    np.minimum(t3, e, out=t3)
    return np.maximum(t2, t3, out=out)  # med3(j, k, e)


def median_filter_multi_fast(
    samples: np.ndarray,
    kernel: int = 5,
    out: np.ndarray | None = None,
    work: tuple | None = None,
) -> np.ndarray:
    """Value-identical fast path for :func:`median_filter_multi`.

    For the 3- and 5-point kernels the pipeline actually uses, the
    running median is computed with a fixed min/max selection network
    over the zero-padded shifted rows instead of sorting every window —
    ~8x faster at paper shapes. The network selects one of the window
    values, exactly like the sorting median of an odd-length window, so
    the output equals :func:`median_filter_multi` elementwise (pinned
    by ``tests/signal/test_filters.py``). Other kernels delegate to
    :func:`median_filter_multi` unchanged.

    Args:
        samples: 2-D ``(channels, n)`` input.
        kernel: odd window length.
        out: optional ``(channels, n)`` float64 output buffer.
        work: optional scratch from :func:`median_filter_workspace`,
            reused across calls by the hot authentication path.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if (
        samples.ndim != 2
        or kernel not in (3, 5)
        or samples.shape[1] < kernel
    ):
        result = median_filter_multi(samples, kernel)
        if out is not None:
            np.copyto(out, result)
            return out
        return result
    channels, n = samples.shape
    if work is None:
        work = median_filter_workspace(channels, n, kernel)
    padded, *temps = work
    if out is None:
        out = np.empty((channels, n))
    half = kernel // 2
    padded[:, half : half + n] = samples
    if kernel == 3:
        return _median3_rows(padded, n, temps[0], temps[1], out)
    return _median5_rows(padded, n, *temps, out)


def median_filter_workspace(channels: int, n: int, kernel: int = 5) -> tuple:
    """Preallocated scratch for :func:`median_filter_multi_fast`.

    The first array is the zero-padded row buffer (its pad columns are
    zeroed once here and never written afterwards); the rest are the
    elementwise min/max temporaries of the selection network.
    """
    if kernel not in (3, 5):
        raise ConfigurationError(
            f"median workspace supports kernels 3 and 5, got {kernel}"
        )
    padded = np.zeros((channels, n + kernel - 1))
    n_temps = 2 if kernel == 3 else 4
    return (padded,) + tuple(np.empty((channels, n)) for _ in range(n_temps))


def savitzky_golay(
    samples: np.ndarray, window: int = 11, polyorder: int = 3
) -> np.ndarray:
    """Savitzky-Golay smoothing (the SG filter of the calibration step).

    Args:
        samples: input signal.
        window: odd window length, must exceed ``polyorder``.
        polyorder: fitted polynomial order.

    Returns:
        Smoothed signal of the same length.
    """
    samples = _check_1d(samples, "savitzky_golay")
    if window % 2 == 0 or window <= polyorder:
        raise ConfigurationError(
            f"SG window must be odd and > polyorder: window={window}, "
            f"polyorder={polyorder}"
        )
    if samples.size < window:
        return samples.copy()
    return sps.savgol_filter(samples, window_length=window, polyorder=polyorder)


@lru_cache(maxsize=16)
def _savgol_coeffs_cached(window: int, polyorder: int) -> np.ndarray:
    """FIR coefficients of the SG filter; the lstsq fit behind them is
    data-independent, so one set serves every signal.

    Concurrency: ``lru_cache`` is internally locked, and the cached
    array is frozen (``setflags(write=False)``) before publication, so
    concurrent callers share one immutable coefficient set safely.
    """
    coeffs = sps.savgol_coeffs(window, polyorder)
    coeffs.setflags(write=False)
    return coeffs


def warm_savgol(window: int = 11, polyorder: int = 3) -> None:
    """Prime the SG coefficient cache for a (window, polyorder) pair."""
    _savgol_coeffs_cached(int(window), int(polyorder))


def clear_savgol_cache() -> None:
    """Drop cached SG coefficients (cold-start benchmarks and tests)."""
    _savgol_coeffs_cached.cache_clear()


def savitzky_golay_cached(
    samples: np.ndarray,
    window: int = 11,
    polyorder: int = 3,
    fit_edges: bool = True,
) -> np.ndarray:
    """Bit-identical fast path for :func:`savitzky_golay`.

    ``scipy.signal.savgol_filter`` (mode ``"interp"``) is one FIR
    correlation plus two least-squares polynomial edge fits — but it
    recomputes the FIR coefficients (their own lstsq solve) on every
    call. This variant reuses cached coefficients and replays scipy's
    own interior/edge steps, so the output is bit-identical to
    :func:`savitzky_golay` (pinned by ``tests/signal/test_filters.py``)
    at ~40% less cost. When the private scipy edge helper is missing,
    it silently falls back to the stock filter.

    Args:
        samples: input signal.
        window: odd window length, must exceed ``polyorder``.
        polyorder: fitted polynomial order.
        fit_edges: when False, skip the two polynomial edge fits — by
            far the dominant cost — leaving the first and last
            ``window // 2`` output samples *unspecified* (raw
            constant-padded convolution values). Only for callers that
            provably never read those samples; interior samples are
            bit-identical either way.
    """
    samples = _check_1d(samples, "savitzky_golay")
    if window % 2 == 0 or window <= polyorder:
        raise ConfigurationError(
            f"SG window must be odd and > polyorder: window={window}, "
            f"polyorder={polyorder}"
        )
    if samples.size < window:
        return samples.copy()
    if _fit_edges_polyfit is None:  # pragma: no cover - scipy-dependent
        return sps.savgol_filter(
            samples, window_length=window, polyorder=polyorder
        )
    coeffs = _savgol_coeffs_cached(window, polyorder)
    smoothed = convolve1d(samples, coeffs, axis=-1, mode="constant")
    if fit_edges:
        _fit_edges_polyfit(samples, window, polyorder, 0, 1.0, -1, smoothed)
    return smoothed


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge truncation.

    Used by the evaluation utilities; not part of the paper pipeline.
    """
    samples = _check_1d(samples, "moving_average")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window == 1:
        return samples.copy()
    # Cumulative-sum formulation of the old double-np.convolve: O(n)
    # instead of O(n * window). ``np.convolve(x, ones(w), "same")[i]``
    # sums x over [i - w//2, i + (w-1)//2] clipped to the signal, and
    # the count convolution is exactly the clipped window length. One
    # deliberate divergence: for window > n the convolve version
    # returned a window-length array ("same" follows the longer
    # operand); here the output always matches the input length.
    n = samples.size
    prefix = np.concatenate(([0.0], np.cumsum(samples)))
    i = np.arange(n)
    lo = np.clip(i - window // 2, 0, n)
    hi = np.clip(i + (window - 1) // 2 + 1, 0, n)
    return (prefix[hi] - prefix[lo]) / (hi - lo)
