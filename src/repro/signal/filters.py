"""Smoothing filters for PPG preprocessing.

The paper uses a median filter for noise removal (non-linear, preserves
waveform detail while killing impulse noise from the low-cost front
end) and a Savitzky-Golay filter before the extreme-point search in the
calibration module (removes locally unimportant fluctuation while
retaining the wave's shape).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError, SignalError


def _check_1d(samples: np.ndarray, name: str) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"{name} expects a 1-D signal, got shape {samples.shape}")
    if samples.size == 0:
        raise SignalError(f"{name} received an empty signal")
    return samples


def median_filter(samples: np.ndarray, kernel: int = 5) -> np.ndarray:
    """Median-filter a 1-D signal (the Noise Removal module).

    Args:
        samples: input signal.
        kernel: odd window length.

    Returns:
        Filtered signal of the same length.
    """
    samples = _check_1d(samples, "median_filter")
    if kernel < 1 or kernel % 2 == 0:
        raise ConfigurationError(f"median kernel must be a positive odd int: {kernel}")
    if kernel == 1 or samples.size < kernel:
        return samples.copy()
    return sps.medfilt(samples, kernel_size=kernel)


def savitzky_golay(
    samples: np.ndarray, window: int = 11, polyorder: int = 3
) -> np.ndarray:
    """Savitzky-Golay smoothing (the SG filter of the calibration step).

    Args:
        samples: input signal.
        window: odd window length, must exceed ``polyorder``.
        polyorder: fitted polynomial order.

    Returns:
        Smoothed signal of the same length.
    """
    samples = _check_1d(samples, "savitzky_golay")
    if window % 2 == 0 or window <= polyorder:
        raise ConfigurationError(
            f"SG window must be odd and > polyorder: window={window}, "
            f"polyorder={polyorder}"
        )
    if samples.size < window:
        return samples.copy()
    return sps.savgol_filter(samples, window_length=window, polyorder=polyorder)


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge truncation.

    Used by the evaluation utilities; not part of the paper pipeline.
    """
    samples = _check_1d(samples, "moving_average")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window == 1:
        return samples.copy()
    kernel = np.ones(window)
    sums = np.convolve(samples, kernel, mode="same")
    counts = np.convolve(np.ones_like(samples), kernel, mode="same")
    return sums / counts
