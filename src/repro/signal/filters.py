"""Smoothing filters for PPG preprocessing.

The paper uses a median filter for noise removal (non-linear, preserves
waveform detail while killing impulse noise from the low-cost front
end) and a Savitzky-Golay filter before the extreme-point search in the
calibration module (removes locally unimportant fluctuation while
retaining the wave's shape).
"""

from __future__ import annotations

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError, SignalError


def _check_1d(samples: np.ndarray, name: str) -> np.ndarray:
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"{name} expects a 1-D signal, got shape {samples.shape}")
    if samples.size == 0:
        raise SignalError(f"{name} received an empty signal")
    return samples


def median_filter(samples: np.ndarray, kernel: int = 5) -> np.ndarray:
    """Median-filter a 1-D signal (the Noise Removal module).

    Args:
        samples: input signal.
        kernel: odd window length.

    Returns:
        Filtered signal of the same length.
    """
    samples = _check_1d(samples, "median_filter")
    if kernel < 1 or kernel % 2 == 0:
        raise ConfigurationError(f"median kernel must be a positive odd int: {kernel}")
    if kernel == 1 or samples.size < kernel:
        return samples.copy()
    return sps.medfilt(samples, kernel_size=kernel)


def median_filter_multi(samples: np.ndarray, kernel: int = 5) -> np.ndarray:
    """Median-filter every row of a 2-D ``(channels, n)`` array at once.

    Produces exactly the same output as calling :func:`median_filter`
    per row (``scipy.signal.medfilt`` zero-pads the edges; so does the
    zero-padded sliding window here — medians of identical value sets
    are identical), but computes all channels in one vectorized
    ``np.median`` over a strided window view instead of a Python loop.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 2:
        raise SignalError(
            f"median_filter_multi expects a 2-D signal, got shape {samples.shape}"
        )
    if samples.shape[1] == 0:
        raise SignalError("median_filter_multi received an empty signal")
    if kernel < 1 or kernel % 2 == 0:
        raise ConfigurationError(f"median kernel must be a positive odd int: {kernel}")
    if kernel == 1 or samples.shape[1] < kernel:
        return samples.copy()
    half = kernel // 2
    padded = np.pad(samples, ((0, 0), (half, half)), mode="constant")
    windows = np.lib.stride_tricks.sliding_window_view(padded, kernel, axis=1)
    return np.median(windows, axis=-1)


def savitzky_golay(
    samples: np.ndarray, window: int = 11, polyorder: int = 3
) -> np.ndarray:
    """Savitzky-Golay smoothing (the SG filter of the calibration step).

    Args:
        samples: input signal.
        window: odd window length, must exceed ``polyorder``.
        polyorder: fitted polynomial order.

    Returns:
        Smoothed signal of the same length.
    """
    samples = _check_1d(samples, "savitzky_golay")
    if window % 2 == 0 or window <= polyorder:
        raise ConfigurationError(
            f"SG window must be odd and > polyorder: window={window}, "
            f"polyorder={polyorder}"
        )
    if samples.size < window:
        return samples.copy()
    return sps.savgol_filter(samples, window_length=window, polyorder=polyorder)


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average with edge truncation.

    Used by the evaluation utilities; not part of the paper pipeline.
    """
    samples = _check_1d(samples, "moving_average")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if window == 1:
        return samples.copy()
    # Cumulative-sum formulation of the old double-np.convolve: O(n)
    # instead of O(n * window). ``np.convolve(x, ones(w), "same")[i]``
    # sums x over [i - w//2, i + (w-1)//2] clipped to the signal, and
    # the count convolution is exactly the clipped window length. One
    # deliberate divergence: for window > n the convolve version
    # returned a window-length array ("same" follows the longer
    # operand); here the output always matches the input length.
    n = samples.size
    prefix = np.concatenate(([0.0], np.cumsum(samples)))
    i = np.arange(n)
    lo = np.clip(i - window // 2, 0, n)
    hi = np.clip(i + (window - 1) // 2 + 1, 0, n)
    return (prefix[hi] - prefix[lo]) / (hi - lo)
