"""Waveform segmentation around calibrated keystroke moments.

Section IV-B.2.5: with precise keystroke moments known, a window of 90
samples around each moment isolates the single-keystroke pulse wave.
The mean inter-key gap is about 1.1 s, so 90 samples at 100 Hz avoids
overlapping adjacent keystrokes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SegmentationError


def segment_around(
    samples: np.ndarray, center: int, window: int = 90
) -> np.ndarray:
    """Cut the window of length ``window`` centered at ``center``.

    If the window would run past either edge of the signal it is
    shifted inward so the output always has exactly ``window`` columns;
    this mirrors how a streaming implementation would buffer.

    Args:
        samples: array of shape ``(n_channels, n)`` or ``(n,)``.
        center: calibrated keystroke sample index.
        window: segment length in samples.

    Returns:
        Array of shape ``(n_channels, window)``.

    Raises:
        SegmentationError: if the signal is shorter than ``window`` or
            ``center`` lies outside it.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        samples = samples[np.newaxis, :]
    if samples.ndim != 2:
        raise SegmentationError(
            f"expected 1-D or 2-D input, got shape {samples.shape}"
        )
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    n = samples.shape[1]
    if n < window:
        raise SegmentationError(
            f"signal of length {n} shorter than segment window {window}"
        )
    if not 0 <= center < n:
        raise SegmentationError(f"center {center} outside signal of length {n}")

    lo = center - window // 2
    lo = max(0, min(lo, n - window))
    return samples[:, lo : lo + window]
