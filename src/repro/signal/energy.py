"""Short-time energy analysis.

After detrending, keystroke neighbourhoods carry far more energy than
quiescent heartbeat segments, so the input-case identification module
thresholds the short-time energy around each calibrated keystroke time
(threshold = 1/2 of the mean short-time energy, window = 20 samples at
100 Hz).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SignalError


def short_time_energy(samples: np.ndarray, window: int = 20) -> np.ndarray:
    """Sliding-window energy of a 1-D signal.

    ``E[i]`` is the sum of squared samples in the centered window of
    length ``window`` around ``i`` (truncated at the edges).

    Args:
        samples: 1-D input signal.
        window: window length in samples.

    Returns:
        Energy sequence, same length as the input.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    if samples.size == 0:
        raise SignalError("received an empty signal")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    squared = samples ** 2
    kernel = np.ones(min(window, samples.size))
    return np.convolve(squared, kernel, mode="same")


def window_energy(samples: np.ndarray, center: int, window: int) -> float:
    """Total energy of the window of length ``window`` centered at ``center``.

    Edge windows are truncated to the available samples.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    if not 0 <= center < samples.size:
        raise SignalError(
            f"center {center} outside signal of length {samples.size}"
        )
    half = window // 2
    lo = max(0, center - half)
    hi = min(samples.size, center + half + 1)
    return float(np.sum(samples[lo:hi] ** 2))
