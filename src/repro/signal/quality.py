"""Signal-quality assessment for PPG recordings.

A deployed authenticator should refuse to make a biometric decision on
garbage input rather than silently rejecting (poor usability) or —
worse — training on it at enrollment. This module scores a recording
before it enters the pipeline:

- **wideband noise level** per channel, from the median absolute
  first difference (robust to artifacts);
- **artifact-to-background ratio**: the peak short-time energy around
  the reported keystrokes against the quiescent background — the
  quantity the whole detection stage relies on;
- **dead/saturated channel detection**;
- an overall :class:`QualityReport` with a usability verdict.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..config import PipelineConfig
from ..errors import SignalError
from ..types import KeystrokeEvent, PPGRecording
from .detrend import smoothness_priors_detrend
from .energy import short_time_energy

#: A channel whose sample variance falls below this is considered dead.
DEAD_CHANNEL_VARIANCE = 1e-12

#: Fraction of samples at the ADC rails above which a channel is
#: considered saturated.
SATURATION_FRACTION = 0.05

#: Minimum fraction of finite samples for a channel to count as usable;
#: below this, gap repair cannot reconstruct anything trustworthy.
MIN_FINITE_FRACTION = 0.5


@dataclass(frozen=True)
class ChannelQuality:
    """Quality metrics of one PPG channel.

    Attributes:
        noise_level: robust wideband noise estimate (median absolute
            first difference / 0.6745, the usual MAD-to-sigma factor).
        dynamic_range: peak-to-peak amplitude.
        dead: variance below :data:`DEAD_CHANNEL_VARIANCE`.
        saturated: too many samples pinned at the extremes.
        finite_fraction: fraction of samples that are finite — below
            1.0 when the receiver marked dropped samples as NaN.
    """

    noise_level: float
    dynamic_range: float
    dead: bool
    saturated: bool
    finite_fraction: float = 1.0

    @property
    def usable(self) -> bool:
        """Whether this channel can contribute to authentication."""
        return (
            not (self.dead or self.saturated)
            and self.finite_fraction >= MIN_FINITE_FRACTION
        )


@dataclass(frozen=True)
class QualityReport:
    """Overall quality of a recording for authentication purposes.

    Attributes:
        channels: per-channel metrics.
        artifact_ratio: peak keystroke-window energy over the median
            background energy (``None`` when no events were supplied).
        usable_channels: count of channels passing the per-channel
            checks.
        ok: overall verdict — enough usable channels and, when events
            are given, clearly visible keystroke artifacts.
    """

    channels: Tuple[ChannelQuality, ...]
    artifact_ratio: Optional[float]
    usable_channels: int
    ok: bool


def channel_quality(
    samples: np.ndarray, full_scale: Optional[float] = None
) -> ChannelQuality:
    """Assess one channel.

    Args:
        samples: 1-D channel samples.
        full_scale: ADC full-scale amplitude for saturation detection;
            inferred as the max absolute value when omitted (in which
            case saturation means "stuck at its own extreme").
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1 or samples.size < 3:
        raise SignalError("channel quality needs a 1-D signal of >= 3 samples")

    finite_mask = np.isfinite(samples)
    finite_fraction = float(np.mean(finite_mask))
    clean = samples[finite_mask]
    if clean.size < 3:
        # Effectively no data arrived on this channel.
        return ChannelQuality(
            noise_level=float("inf"),
            dynamic_range=0.0,
            dead=True,
            saturated=False,
            finite_fraction=finite_fraction,
        )

    variance = float(np.var(clean))
    dead = variance < DEAD_CHANNEL_VARIANCE

    diffs = np.abs(np.diff(clean))
    noise = float(np.median(diffs)) / 0.6745

    rail = full_scale if full_scale is not None else float(np.max(np.abs(clean)))
    if rail <= 0:
        saturated = False
    else:
        at_rail = np.mean(np.abs(clean) >= 0.999 * rail)
        # With an inferred rail some samples always touch it; only an
        # excessive dwell time counts.
        saturated = bool(at_rail > SATURATION_FRACTION) and not dead

    return ChannelQuality(
        noise_level=noise,
        dynamic_range=float(np.ptp(clean)),
        dead=dead,
        saturated=saturated,
        finite_fraction=finite_fraction,
    )


def assess_recording(
    recording: PPGRecording,
    events: Sequence[KeystrokeEvent] = (),
    config: Optional[PipelineConfig] = None,
    min_usable_channels: int = 1,
    min_artifact_ratio: float = 3.0,
) -> QualityReport:
    """Assess a whole recording, optionally against expected keystrokes.

    Args:
        recording: the PPG recording.
        events: phone-reported keystrokes; when given, the keystroke
            artifact visibility is checked too.
        config: pipeline constants.
        min_usable_channels: verdict threshold.
        min_artifact_ratio: minimum peak-to-background energy ratio for
            the keystrokes to count as visible.

    Returns:
        The :class:`QualityReport`.
    """
    if config is None:
        config = PipelineConfig()
    channels = tuple(
        channel_quality(row) for row in recording.samples
    )
    usable = sum(1 for c in channels if c.usable)

    artifact_ratio: Optional[float] = None
    if events and usable > 0:
        usable_rows = [
            row for row, c in zip(recording.samples, channels) if c.usable
        ]
        reference = smoothness_priors_detrend(
            np.mean(usable_rows, axis=0), config.detrend_lambda
        )
        energy = short_time_energy(reference, config.energy_window)
        if not bool(np.all(np.isfinite(energy))):
            # Non-finite stretches make artifact visibility unmeasurable;
            # the verdict below then fails closed when events are given.
            energy = np.zeros(0)
        background = float(np.median(energy)) if energy.size else 0.0
        peaks = []
        for event in events:
            index = int(round((event.reported_time - recording.start_time)
                              * recording.fs))
            if 0 <= index < energy.size:
                half = config.calibration_window // 2
                lo, hi = max(0, index - half), min(energy.size, index + half + 1)
                peaks.append(float(np.max(energy[lo:hi])))
        if peaks and background > 0:
            artifact_ratio = float(np.median(peaks)) / background
        elif peaks:
            artifact_ratio = float("inf")

    ok = usable >= min_usable_channels
    if events:
        ok = ok and artifact_ratio is not None and (
            artifact_ratio >= min_artifact_ratio
        )
    return QualityReport(
        channels=channels,
        artifact_ratio=artifact_ratio,
        usable_channels=usable,
        ok=ok,
    )
