"""Fine-grained keystroke time calibration (Eq. 1 of the paper).

The phone-reported keystroke timestamps are coarse because of the
dynamically changing communication delay between the phone and the PPG
acquisition device. Keystrokes, however, produce the most pronounced
deflections in the trace, so the true press moment is recovered by
searching — within a window around the reported time — for the extreme
point that deviates the most from the local mean:

.. math::

    \\arg\\max_{s \\in S}
    \\left| y_s - \\frac{1}{w+1} \\sum_{i=-w/2}^{w/2} y_{s+i} \\right|

where ``S`` is the candidate set of local extrema of the
Savitzky-Golay-filtered signal and ``w`` the window size (30 samples at
100 Hz).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import PipelineConfig
from ..errors import ConfigurationError, SignalError
from ..types import KeystrokeEvent, PPGRecording
from .filters import savitzky_golay
from .peaks import local_extrema


def _local_mean_deviation(samples: np.ndarray, index: int, window: int) -> float:
    """The Eq. 1 objective: |y_s - mean of the window centered at s|."""
    half = window // 2
    lo = max(0, index - half)
    hi = min(samples.size, index + half + 1)
    return float(abs(samples[index] - np.mean(samples[lo:hi])))


def calibrate_keystroke_index(
    samples: np.ndarray,
    reported_index: int,
    window: int = 30,
    sg_window: int = 11,
    sg_polyorder: int = 3,
) -> int:
    """Snap a coarse keystroke index to the true artifact apex.

    Args:
        samples: 1-D reference signal (after noise removal).
        reported_index: sample index of the phone-reported press time.
        window: search/objective window size ``w`` (paper: 30).
        sg_window: Savitzky-Golay window applied before the search.
        sg_polyorder: Savitzky-Golay polynomial order.

    Returns:
        The calibrated sample index.

    Raises:
        SignalError: if ``reported_index`` lies outside the signal.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    if not 0 <= reported_index < samples.size:
        raise SignalError(
            f"reported index {reported_index} outside signal of "
            f"length {samples.size}"
        )
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")

    smoothed = savitzky_golay(samples, window=sg_window, polyorder=sg_polyorder)
    return _calibrate_on_smoothed(smoothed, reported_index, window)


def _calibrate_on_smoothed(
    smoothed: np.ndarray, reported_index: int, window: int
) -> int:
    """Extreme-point search on an already Savitzky-Golay-smoothed signal.

    Hoisted out of :func:`calibrate_keystroke_index` so that
    :func:`calibrate_trial_indices` can smooth the shared reference
    signal once per trial instead of once per keystroke — the search
    itself and its result are unchanged.
    """
    half = window // 2
    lo = max(0, reported_index - half)
    hi = min(smoothed.size, reported_index + half + 1)
    segment = smoothed[lo:hi]
    candidates = local_extrema(segment) + lo

    best_index = reported_index
    best_score = -np.inf
    for candidate in candidates:
        score = _local_mean_deviation(smoothed, int(candidate), window)
        if score > best_score:
            best_score = score
            best_index = int(candidate)
    return best_index


def calibrate_trial_indices(
    recording: PPGRecording,
    events: Sequence[KeystrokeEvent],
    config: PipelineConfig,
    reference: np.ndarray,
) -> List[int]:
    """Calibrate every keystroke of a trial against a reference signal.

    Args:
        recording: the source recording (provides the time base).
        events: phone-reported keystroke events.
        config: pipeline constants (windows, SG parameters).
        reference: 1-D reference signal aligned with ``recording``
            (typically the channel average after noise removal).

    Returns:
        Calibrated sample indices, one per event, in event order.
    """
    reference = np.asarray(reference, dtype=np.float64)
    if reference.ndim != 1 or reference.size != recording.n_samples:
        raise SignalError(
            "reference must be 1-D and aligned with the recording: "
            f"got {reference.shape} for {recording.n_samples} samples"
        )
    if config.calibration_window < 2:
        raise ConfigurationError(
            f"window must be >= 2, got {config.calibration_window}"
        )
    # Smooth the shared reference once for the whole trial; every
    # keystroke searches the same filtered signal (identical results to
    # smoothing per event, at 1/len(events) of the SG cost).
    smoothed = savitzky_golay(
        reference, window=config.sg_window, polyorder=config.sg_polyorder
    )
    indices = []
    for event in events:
        raw_index = int(round((event.reported_time - recording.start_time)
                              * recording.fs))
        raw_index = int(np.clip(raw_index, 0, recording.n_samples - 1))
        indices.append(
            _calibrate_on_smoothed(
                smoothed, raw_index, config.calibration_window
            )
        )
    return indices
