"""Fine-grained keystroke time calibration (Eq. 1 of the paper).

The phone-reported keystroke timestamps are coarse because of the
dynamically changing communication delay between the phone and the PPG
acquisition device. Keystrokes, however, produce the most pronounced
deflections in the trace, so the true press moment is recovered by
searching — within a window around the reported time — for the extreme
point that deviates the most from the local mean:

.. math::

    \\arg\\max_{s \\in S}
    \\left| y_s - \\frac{1}{w+1} \\sum_{i=-w/2}^{w/2} y_{s+i} \\right|

where ``S`` is the candidate set of local extrema of the
Savitzky-Golay-filtered signal and ``w`` the window size (30 samples at
100 Hz).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..config import PipelineConfig
from ..errors import ConfigurationError, SignalError
from ..types import KeystrokeEvent, PPGRecording
from .filters import savitzky_golay, savitzky_golay_cached
from .peaks import local_extrema


def _local_mean_deviation(samples: np.ndarray, index: int, window: int) -> float:
    """The Eq. 1 objective: |y_s - mean of the window centered at s|."""
    half = window // 2
    lo = max(0, index - half)
    hi = min(samples.size, index + half + 1)
    return float(abs(samples[index] - np.mean(samples[lo:hi])))


def calibrate_keystroke_index(
    samples: np.ndarray,
    reported_index: int,
    window: int = 30,
    sg_window: int = 11,
    sg_polyorder: int = 3,
) -> int:
    """Snap a coarse keystroke index to the true artifact apex.

    Args:
        samples: 1-D reference signal (after noise removal).
        reported_index: sample index of the phone-reported press time.
        window: search/objective window size ``w`` (paper: 30).
        sg_window: Savitzky-Golay window applied before the search.
        sg_polyorder: Savitzky-Golay polynomial order.

    Returns:
        The calibrated sample index.

    Raises:
        SignalError: if ``reported_index`` lies outside the signal.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    if not 0 <= reported_index < samples.size:
        raise SignalError(
            f"reported index {reported_index} outside signal of "
            f"length {samples.size}"
        )
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")

    smoothed = savitzky_golay(samples, window=sg_window, polyorder=sg_polyorder)
    return _calibrate_on_smoothed(smoothed, reported_index, window)


def _calibrate_on_smoothed(
    smoothed: np.ndarray, reported_index: int, window: int
) -> int:
    """Extreme-point search on an already Savitzky-Golay-smoothed signal.

    Hoisted out of :func:`calibrate_keystroke_index` so that
    :func:`calibrate_trial_indices` can smooth the shared reference
    signal once per trial instead of once per keystroke — the search
    itself and its result are unchanged.
    """
    half = window // 2
    lo = max(0, reported_index - half)
    hi = min(smoothed.size, reported_index + half + 1)
    segment = smoothed[lo:hi]
    candidates = local_extrema(segment) + lo

    best_index = reported_index
    best_score = -np.inf
    for candidate in candidates:
        score = _local_mean_deviation(smoothed, int(candidate), window)
        if score > best_score:
            best_score = score
            best_index = int(candidate)
    return best_index


def calibrate_trial_indices_fast(
    recording: PPGRecording,
    events: Sequence[KeystrokeEvent],
    config: PipelineConfig,
    reference: np.ndarray,
) -> List[int]:
    """Result-identical hot-path twin of :func:`calibrate_trial_indices`.

    Same signature, same returned indices, same errors (pinned by
    ``tests/signal/test_calibration.py``) — restructured for per-call
    latency:

    - The Savitzky-Golay smoothing reuses cached FIR coefficients, and
      the two polynomial *edge* fits — the dominant SG cost — run only
      when some keystroke's search/objective window can actually reach
      the first or last ``sg_window // 2`` samples. Interior smoothed
      values are bit-identical either way, and only read values affect
      the selected indices.
    - The strict local-extrema mask is computed once over the whole
      smoothed signal instead of per search window. A slice-interior
      point compares against the same two neighbours as the global
      signal, so restricting the global extrema to the open interval
      and re-adding the two window endpoints reproduces
      ``local_extrema(segment)`` exactly.
    - All events' candidates are scored in one vectorized gather:
      rows of a sliding-window view rowwise-averaged (``np.mean`` over
      the last axis reduces each row independently, matching the
      per-slice mean), with edge-clipped candidates falling back to
      the scalar objective. ``local_extrema`` orders candidates
      ascending and the reference keeps the *first* strict maximum,
      which is precisely ``np.argmax``.
    """
    reference = np.asarray(reference, dtype=np.float64)
    if reference.ndim != 1 or reference.size != recording.n_samples:
        raise SignalError(
            "reference must be 1-D and aligned with the recording: "
            f"got {reference.shape} for {recording.n_samples} samples"
        )
    window = config.calibration_window
    if window < 2:
        raise ConfigurationError(f"window must be >= 2, got {window}")
    n = reference.size
    half = window // 2

    raws = []
    for event in events:
        raw_index = int(round((event.reported_time - recording.start_time)
                              * recording.fs))
        raws.append(min(max(raw_index, 0), n - 1))

    # A keystroke at raw index r reads smoothed samples in
    # [r - 2*half, r + 2*half] only (candidate search window plus each
    # candidate's objective window). Fit the SG edges just when that
    # span can touch the first/last sg_window//2 samples.
    halflen = config.sg_window // 2
    fit_edges = any(
        r - 2 * half < halflen or r + 2 * half + 1 > n - halflen
        for r in raws
    )
    smoothed = savitzky_golay_cached(
        reference,
        window=config.sg_window,
        polyorder=config.sg_polyorder,
        fit_edges=fit_edges,
    )
    if not raws:
        return []

    if n > 2:
        inner = smoothed[1:-1]
        is_ext = ((inner > smoothed[:-2]) & (inner > smoothed[2:])) | (
            (inner < smoothed[:-2]) & (inner < smoothed[2:])
        )
        ext_idx = np.flatnonzero(is_ext) + 1
    else:
        ext_idx = np.empty(0, dtype=np.intp)
    win_len = 2 * half + 1
    if n >= win_len:
        windows = np.lib.stride_tricks.sliding_window_view(smoothed, win_len)
    else:
        windows = None

    cand_lists = []
    for r in raws:
        lo = r - half if r - half > 0 else 0
        hi = r + half + 1 if r + half + 1 < n else n
        if hi - lo <= 2:
            # local_extrema returns every index of a <=2-sample window.
            cand_lists.append(np.arange(lo, hi))
        else:
            a = int(np.searchsorted(ext_idx, lo, side="right"))
            b = int(np.searchsorted(ext_idx, hi - 1, side="left"))
            cand_lists.append(np.concatenate(([lo], ext_idx[a:b], [hi - 1])))
    cand_all = (
        np.concatenate(cand_lists) if len(cand_lists) > 1 else cand_lists[0]
    )
    starts = cand_all - half
    if not fit_edges:
        # The skip-edges condition already proves every candidate's
        # objective window lies inside the signal (and n >= win_len).
        interior = None
    elif windows is not None:
        interior = (starts >= 0) & (cand_all + half + 1 <= n)
    else:
        interior = np.zeros(cand_all.size, dtype=bool)
    scores = np.empty(cand_all.size)
    if interior is None or interior.all():
        np.subtract(
            smoothed[cand_all], np.mean(windows[starts], axis=-1), out=scores
        )
        np.abs(scores, out=scores)
    else:
        if interior.any():
            scores[interior] = np.abs(
                smoothed[cand_all[interior]]
                - np.mean(windows[starts[interior]], axis=-1)
            )
        for i in np.flatnonzero(~interior):
            scores[i] = _local_mean_deviation(
                smoothed, int(cand_all[i]), window
            )

    indices = []
    pos = 0
    for cand in cand_lists:
        segment = scores[pos : pos + cand.size]
        indices.append(int(cand[int(np.argmax(segment))]))
        pos += cand.size
    return indices


def calibrate_trial_indices(
    recording: PPGRecording,
    events: Sequence[KeystrokeEvent],
    config: PipelineConfig,
    reference: np.ndarray,
) -> List[int]:
    """Calibrate every keystroke of a trial against a reference signal.

    Args:
        recording: the source recording (provides the time base).
        events: phone-reported keystroke events.
        config: pipeline constants (windows, SG parameters).
        reference: 1-D reference signal aligned with ``recording``
            (typically the channel average after noise removal).

    Returns:
        Calibrated sample indices, one per event, in event order.
    """
    reference = np.asarray(reference, dtype=np.float64)
    if reference.ndim != 1 or reference.size != recording.n_samples:
        raise SignalError(
            "reference must be 1-D and aligned with the recording: "
            f"got {reference.shape} for {recording.n_samples} samples"
        )
    if config.calibration_window < 2:
        raise ConfigurationError(
            f"window must be >= 2, got {config.calibration_window}"
        )
    # Smooth the shared reference once for the whole trial; every
    # keystroke searches the same filtered signal (identical results to
    # smoothing per event, at 1/len(events) of the SG cost).
    smoothed = savitzky_golay(
        reference, window=config.sg_window, polyorder=config.sg_polyorder
    )
    indices = []
    for event in events:
        raw_index = int(round((event.reported_time - recording.start_time)
                              * recording.fs))
        raw_index = int(np.clip(raw_index, 0, recording.n_samples - 1))
        indices.append(
            _calibrate_on_smoothed(
                smoothed, raw_index, config.calibration_window
            )
        )
    return indices
