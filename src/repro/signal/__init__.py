"""Signal-processing primitives used by the P2Auth pipeline.

Implements the Section IV modules: median-filter noise removal,
Savitzky-Golay smoothing, smoothness-priors detrending (Tarvainen et
al.), short-time energy, fine-grained keystroke time calibration via
extreme-point search (Eq. 1), waveform segmentation, and sampling-rate
decimation for the rate-sweep experiments.
"""

from .calibration import calibrate_keystroke_index, calibrate_trial_indices
from .detrend import smoothness_priors_detrend, smoothness_priors_detrend_batch
from .energy import short_time_energy, window_energy
from .filters import median_filter, median_filter_multi, moving_average, savitzky_golay
from .peaks import local_extrema
from .quality import ChannelQuality, QualityReport, assess_recording, channel_quality
from .resample import decimate_recording, decimate_signal
from .segmentation import segment_around

__all__ = [
    "ChannelQuality",
    "QualityReport",
    "assess_recording",
    "calibrate_keystroke_index",
    "calibrate_trial_indices",
    "channel_quality",
    "decimate_recording",
    "decimate_signal",
    "local_extrema",
    "median_filter",
    "median_filter_multi",
    "moving_average",
    "savitzky_golay",
    "segment_around",
    "short_time_energy",
    "smoothness_priors_detrend",
    "smoothness_priors_detrend_batch",
    "window_energy",
]
