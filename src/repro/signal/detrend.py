"""Smoothness-priors detrending (Tarvainen, Ranta-aho, Karjalainen 2002).

Implements Eq. 2-3 of the paper: the detrended signal is

.. math::

    \\hat{Y}_{det} = [I - (I + \\lambda^2 D_2^T D_2)^{-1}] Y

where :math:`D_2` is the second-order difference matrix. The term
:math:`(I + \\lambda^2 D_2^T D_2)^{-1} Y` is the estimated smooth trend;
subtracting it removes non-linear baseline drift while leaving the
keystroke transients intact, which the short-time-energy input-case
identification depends on.

The system matrix :math:`A = I + \\lambda^2 D_2^T D_2` is symmetric
positive-definite and pentadiagonal, so it is solved with a banded
Cholesky factorization (``scipy.linalg.cholesky_banded`` +
``cho_solve_banded``) in O(n). The factor depends only on ``(n, lam)``
— not on the data — so it is computed once per signal length and
regularization value, cached in an LRU, and reused for every channel
and every trial of that shape. All channels of a trial (and whole
batches of same-length trials) are solved as a single multi-RHS
backsubstitution.

The previous generic ``scipy.sparse.linalg.spsolve`` implementation is
kept verbatim as :func:`_estimate_trend_reference`; the parity suite in
``tests/signal/test_detrend.py`` pins the banded path to it at
``atol <= 1e-10``.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any

import numpy as np
from scipy import sparse
from scipy.linalg import cho_solve_banded, cholesky_banded
from scipy.sparse.linalg import spsolve

from ..errors import ConfigurationError, SignalError

#: Maximum number of cached banded Cholesky factorizations. Each entry
#: is a (3, n) float64 array, so even 4096-sample factors cost ~100 KiB;
#: a typical experiment sweep touches only a handful of (n, lam) pairs.
FACTOR_CACHE_SIZE = 64


def _second_difference(n: int) -> sparse.csc_matrix:
    """The (n-2) x n second-order difference matrix D2 of Eq. 3."""
    if n < 3:
        raise SignalError(f"detrending needs at least 3 samples, got {n}")
    diagonals = [np.ones(n - 2), -2.0 * np.ones(n - 2), np.ones(n - 2)]
    return sparse.diags(diagonals, offsets=[0, 1, 2], shape=(n - 2, n)).tocsc()


def _validate_lam(lam: float) -> float:
    if lam <= 0:
        raise ConfigurationError(f"lambda must be positive, got {lam}")
    return float(lam)


def _banded_system(n: int, lam: float) -> np.ndarray:
    """Upper banded storage (3, n) of ``I + lam^2 D2^T D2``.

    The diagonals of :math:`D_2^T D_2` follow directly from its stencil
    ``[1, -2, 1]``: the main diagonal is ``[1, 5, 6, ..., 6, 5, 1]``,
    the first off-diagonal ``[-2, -4, ..., -4, -2]``, and the second
    off-diagonal is all ones — with the boundary terms truncated where
    the stencil runs off the matrix.
    """
    if n < 3:
        raise SignalError(f"detrending needs at least 3 samples, got {n}")
    i = np.arange(n)
    lam2 = lam * lam
    main = (i <= n - 3).astype(np.float64)
    main += 4.0 * ((i >= 1) & (i <= n - 2))
    main += 1.0 * (i >= 2)
    j = np.arange(n - 1)
    off1 = -2.0 * ((j <= n - 3).astype(np.float64) + ((j >= 1) & (j <= n - 2)))
    ab = np.zeros((3, n))
    ab[2] = 1.0 + lam2 * main
    ab[1, 1:] = lam2 * off1
    ab[0, 2:] = lam2  # second off-diagonal of D2^T D2 is all ones
    return ab


@lru_cache(maxsize=FACTOR_CACHE_SIZE)
def _banded_cholesky(n: int, lam: float) -> np.ndarray:
    """Cached upper-banded Cholesky factor of the ``(n, lam)`` system."""
    factor = cholesky_banded(_banded_system(n, lam), check_finite=False)
    factor.setflags(write=False)
    return factor


def detrend_cache_info() -> Any:
    """Hit/miss statistics of the factorization cache (for tests/benches)."""
    return _banded_cholesky.cache_info()


def clear_detrend_cache() -> None:
    """Drop every cached factorization (used by parity tests)."""
    _banded_cholesky.cache_clear()


def warm_detrend_factor(n: int, lam: float = 50.0) -> None:
    """Prime the factorization cache for signals of length ``n``.

    Factorizing the pentadiagonal system is the dominant first-call
    cost of detrending a new signal length (~1 ms at paper shapes);
    warmup paths call this so the first real probe pays only the
    backsubstitution.
    """
    lam = _validate_lam(lam)
    if n < 3:
        raise SignalError(f"detrending needs at least 3 samples, got {n}")
    _banded_cholesky(int(n), lam)


def _solve_trend(rows: np.ndarray, lam: float) -> np.ndarray:
    """Solve ``A x = b`` for every row of ``rows`` in one banded call.

    Args:
        rows: right-hand sides, shape ``(n,)`` or ``(m, n)``.
        lam: regularization parameter (validated by the caller).

    Returns:
        The solutions, same shape as ``rows``.
    """
    n = rows.shape[-1]
    factor = _banded_cholesky(n, lam)
    if rows.ndim == 1:
        return cho_solve_banded((factor, False), rows, check_finite=False)
    solved = cho_solve_banded((factor, False), rows.T, check_finite=False)
    return np.ascontiguousarray(solved.T)


# Lazy memo for the resolved LAPACK routine. The unlocked write below
# is a benign race: every racing thread resolves and stores the
# identical function object, and CPython publishes the reference
# atomically — so the memo is thread-safe without a lock.
_pbtrs = None  # concurrency: thread-safe


def _solve_trend_fast(rows: np.ndarray, lam: float) -> np.ndarray:
    """Hot-path twin of :func:`_solve_trend` for 2-D float64 rows.

    Issues the exact LAPACK ``pbtrs`` backsubstitution that
    ``cho_solve_banded`` wraps — same cached factor, same right-hand
    -side memory — minus the wrapper's per-call validation, and returns
    the transposed solution *view* instead of a contiguous copy (the
    caller only reads it elementwise). Bit-identical values to
    :func:`_solve_trend`; pinned by ``tests/signal/test_detrend.py``.
    """
    global _pbtrs
    factor = _banded_cholesky(rows.shape[-1], lam)
    if _pbtrs is None:
        from scipy.linalg import get_lapack_funcs

        (_pbtrs,) = get_lapack_funcs(("pbtrs",), (factor, rows))
    solved, info = _pbtrs(factor, rows.T, lower=False)
    if info != 0:  # pragma: no cover - factor is known positive-definite
        raise SignalError(f"banded backsubstitution failed (info={info})")
    return solved.T


def estimate_trend(samples: np.ndarray, lam: float = 50.0) -> np.ndarray:
    """Estimate the smooth trend component of ``samples``.

    Args:
        samples: 1-D input signal.
        lam: regularization parameter lambda; larger values produce a
            smoother (slower) trend estimate.

    Returns:
        The trend, same length as the input.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    lam = _validate_lam(lam)
    if samples.size < 3:
        raise SignalError(f"detrending needs at least 3 samples, got {samples.size}")
    return _solve_trend(samples, lam)


def _estimate_trend_reference(samples: np.ndarray, lam: float = 50.0) -> np.ndarray:
    """Pre-banded reference: generic sparse LU solve of the same system.

    Kept verbatim from the original implementation as the parity
    baseline for :func:`estimate_trend`; roughly 60x slower at paper
    shapes because it rebuilds and refactors the sparse system on every
    call.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    lam = _validate_lam(lam)
    n = samples.size
    d2 = _second_difference(n)
    system = sparse.identity(n, format="csc") + (lam ** 2) * (d2.T @ d2)
    return spsolve(system, samples)


def smoothness_priors_detrend(samples: np.ndarray, lam: float = 50.0) -> np.ndarray:
    """Remove the smoothness-priors trend from ``samples`` (Eq. 2).

    2-D inputs are solved as one multi-RHS banded backsubstitution —
    all channels share the cached factorization.

    Args:
        samples: 1-D or 2-D ``(channels, n)`` input.
        lam: regularization parameter lambda.

    Returns:
        Detrended signal with the same shape as the input.
    """
    samples = np.asarray(samples, dtype=np.float64)
    lam = _validate_lam(lam)
    if samples.ndim not in (1, 2):
        raise SignalError(f"expected 1-D or 2-D input, got shape {samples.shape}")
    if samples.shape[-1] < 3:
        raise SignalError(
            f"detrending needs at least 3 samples, got {samples.shape[-1]}"
        )
    return samples - _solve_trend(samples, lam)


def smoothness_priors_detrend_batch(
    stacks: np.ndarray, lam: float = 50.0
) -> np.ndarray:
    """Detrend a batch of same-length multi-channel signals at once.

    Flattens a ``(batch, channels, n)`` stack into ``batch * channels``
    right-hand sides and performs a single multi-RHS solve against the
    cached ``(n, lam)`` factorization — the fastest way to preprocess
    many same-shape trials (see ``repro.core.pipeline.preprocess_trials``).

    Args:
        stacks: 3-D array ``(batch, channels, n)``.
        lam: regularization parameter lambda.

    Returns:
        Detrended array with the same shape as the input.
    """
    stacks = np.asarray(stacks, dtype=np.float64)
    lam = _validate_lam(lam)
    if stacks.ndim != 3:
        raise SignalError(f"expected a 3-D (batch, channels, n) input, got {stacks.shape}")
    if stacks.shape[-1] < 3:
        raise SignalError(
            f"detrending needs at least 3 samples, got {stacks.shape[-1]}"
        )
    batch, channels, n = stacks.shape
    rows = stacks.reshape(batch * channels, n)
    return (rows - _solve_trend(rows, lam)).reshape(batch, channels, n)
