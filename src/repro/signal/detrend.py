"""Smoothness-priors detrending (Tarvainen, Ranta-aho, Karjalainen 2002).

Implements Eq. 2-3 of the paper: the detrended signal is

.. math::

    \\hat{Y}_{det} = [I - (I + \\lambda^2 D_2^T D_2)^{-1}] Y

where :math:`D_2` is the second-order difference matrix. The term
:math:`(I + \\lambda^2 D_2^T D_2)^{-1} Y` is the estimated smooth trend;
subtracting it removes non-linear baseline drift while leaving the
keystroke transients intact, which the short-time-energy input-case
identification depends on.

The linear system is pentadiagonal, so we solve it with a banded
solver in O(n) rather than forming the dense inverse.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse.linalg import spsolve

from ..errors import ConfigurationError, SignalError


def _second_difference(n: int) -> sparse.csc_matrix:
    """The (n-2) x n second-order difference matrix D2 of Eq. 3."""
    if n < 3:
        raise SignalError(f"detrending needs at least 3 samples, got {n}")
    diagonals = [np.ones(n - 2), -2.0 * np.ones(n - 2), np.ones(n - 2)]
    return sparse.diags(diagonals, offsets=[0, 1, 2], shape=(n - 2, n)).tocsc()


def estimate_trend(samples: np.ndarray, lam: float = 50.0) -> np.ndarray:
    """Estimate the smooth trend component of ``samples``.

    Args:
        samples: 1-D input signal.
        lam: regularization parameter lambda; larger values produce a
            smoother (slower) trend estimate.

    Returns:
        The trend, same length as the input.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim != 1:
        raise SignalError(f"expected a 1-D signal, got shape {samples.shape}")
    if lam <= 0:
        raise ConfigurationError(f"lambda must be positive, got {lam}")
    n = samples.size
    d2 = _second_difference(n)
    system = sparse.identity(n, format="csc") + (lam ** 2) * (d2.T @ d2)
    return spsolve(system, samples)


def smoothness_priors_detrend(samples: np.ndarray, lam: float = 50.0) -> np.ndarray:
    """Remove the smoothness-priors trend from ``samples`` (Eq. 2).

    Args:
        samples: 1-D or 2-D ``(channels, n)`` input.
        lam: regularization parameter lambda.

    Returns:
        Detrended signal with the same shape as the input.
    """
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim == 1:
        return samples - estimate_trend(samples, lam)
    if samples.ndim == 2:
        return np.vstack([row - estimate_trend(row, lam) for row in samples])
    raise SignalError(f"expected 1-D or 2-D input, got shape {samples.shape}")
