"""Sampling-rate conversion for the rate-sweep experiments.

Fig. 16/17 of the paper study how the system behaves when the wearable
samples PPG at 30-100 Hz instead of the prototype's 100 Hz. We emulate
a lower-rate sensor by polyphase resampling the 100 Hz recording, which
applies the proper anti-aliasing filter.
"""

from __future__ import annotations

from dataclasses import replace
from fractions import Fraction

import numpy as np
from scipy import signal as sps

from ..errors import ConfigurationError, SignalError
from ..types import PPGRecording


def decimate_signal(
    samples: np.ndarray, fs_in: float, fs_out: float
) -> np.ndarray:
    """Resample a signal from ``fs_in`` to ``fs_out``.

    Args:
        samples: 1-D or 2-D ``(channels, n)`` input.
        fs_in: input sampling rate, Hz.
        fs_out: output sampling rate, Hz; must not exceed ``fs_in``.

    Returns:
        Resampled array (same dimensionality, resampled along the last
        axis).
    """
    if fs_in <= 0 or fs_out <= 0:
        raise ConfigurationError("sampling rates must be positive")
    if fs_out > fs_in:
        raise ConfigurationError(
            f"upsampling not supported: {fs_in} Hz -> {fs_out} Hz"
        )
    samples = np.asarray(samples, dtype=np.float64)
    if samples.ndim not in (1, 2):
        raise SignalError(f"expected 1-D or 2-D input, got shape {samples.shape}")
    if fs_out == fs_in:
        return samples.copy()

    ratio = Fraction(fs_out / fs_in).limit_denominator(1000)
    return sps.resample_poly(samples, up=ratio.numerator, down=ratio.denominator,
                             axis=-1)


def decimate_recording(recording: PPGRecording, fs_out: float) -> PPGRecording:
    """Return ``recording`` resampled to ``fs_out``.

    Keystroke timestamps live on the wall clock, so they need no
    adjustment — only the recording's ``fs`` and samples change.
    """
    resampled = decimate_signal(recording.samples, recording.fs, fs_out)
    return replace(recording, samples=resampled, fs=fs_out)
