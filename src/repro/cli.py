"""Command-line interface.

``python -m repro <command>`` exposes the reproduction's main entry
points without writing code:

- ``demo`` — enroll a simulated user and run authentications + attacks;
- ``experiment <id>`` — regenerate one of the paper's tables/figures
  (``fig8``..``fig17``, ``tab1``, or ``all``) at a chosen scale;
- ``robustness`` — sweep fault injectors against enrolled victims and
  report FRR/FAR/quality-rejection per (fault, intensity) cell;
- ``scenarios`` — sweep daily-wear scenarios (motion states, template
  aging, cross-device transfer) and compare template-maintenance
  policies as FRR/FAR-vs-age curves;
- ``simulate`` — synthesize a PIN-entry trial and dump it as CSV;
- ``serve`` — run the HTTP authentication service over a registry
  (synthetic demo population or an existing packed store);
- ``list`` — list the available experiments.
"""

from __future__ import annotations

import argparse
import sys
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

import numpy as np

from . import __version__

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .eval.experiments import ExperimentResult


def _all_runners() -> "Dict[str, Callable[..., ExperimentResult]]":
    from .eval.experiments import RUNNERS
    from .eval.extensions import EXTENSION_RUNNERS

    runners = dict(RUNNERS)
    runners.update(EXTENSION_RUNNERS)
    return runners


_JOBS_HELP = (
    "worker processes for evaluation fan-out "
    "(default: REPRO_N_JOBS or 1; 0 = all cores)"
)


def _add_common_options(
    sub: argparse.ArgumentParser,
    *,
    jobs_help: str = _JOBS_HELP,
    seed_help: str = "seed override",
    seed_default: Optional[int] = None,
) -> None:
    """Give a subcommand the uniform ``--jobs`` / ``--seed`` options."""
    sub.add_argument("--jobs", type=int, default=None, help=jobs_help)
    sub.add_argument("--seed", type=int, default=seed_default, help=seed_help)


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Available experiments:")
    for name, runner in _all_runners().items():
        doc = (runner.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:10s} {doc}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from dataclasses import replace as dc_replace

    from .eval.experiments import DEFAULT, PAPER, SMOKE

    scales = {"smoke": SMOKE, "default": DEFAULT, "paper": PAPER}
    scale = scales[args.scale]
    if args.seed is not None:
        scale = dc_replace(scale, seed=args.seed)
    runners = _all_runners()
    names = list(runners) if args.id == "all" else [args.id]
    unknown = [n for n in names if n not in runners]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(runners)} or 'all'", file=sys.stderr)
        return 2
    for name in names:
        result = runners[name](scale, n_jobs=args.jobs)
        print(result)
        print()
    return 0


def _cmd_robustness(args: argparse.Namespace) -> int:
    import json

    from .data import StudyData
    from .eval.robustness import (
        DEFAULT_INTENSITIES,
        build_report,
        render_markdown,
        run_robustness_sweep,
    )
    from .faults import FAULT_TYPES, resolve_fault_seed

    faults = args.faults.split(",") if args.faults else sorted(FAULT_TYPES)
    unknown = [f for f in faults if f not in FAULT_TYPES]
    if unknown:
        print(f"unknown fault(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"choose from: {', '.join(sorted(FAULT_TYPES))}", file=sys.stderr)
        return 2
    intensities = (
        tuple(float(x) for x in args.intensities.split(","))
        if args.intensities
        else DEFAULT_INTENSITIES
    )
    seed = resolve_fault_seed(args.seed)

    data = StudyData(n_users=6, seed=5)
    cells = run_robustness_sweep(
        data,
        faults=faults,
        intensities=intensities,
        victim_ids=(0, 1),
        attacker_ids=(4, 5),
        num_features=args.features,
        n_jobs=args.jobs,
        seed=seed,
    )
    report = build_report(cells, seed=seed, label="cli")
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print(render_markdown(report))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from .data import StudyData
    from .eval.robustness import (
        DEFAULT_AGE_GRID,
        DEFAULT_INTENSITIES,
        build_scenario_report,
        render_scenario_markdown,
        run_mitigation_sweep,
        run_scenario_sweep,
    )
    from .faults import SCENARIO_TYPES, resolve_fault_seed

    scenarios = (
        args.scenarios.split(",") if args.scenarios else sorted(SCENARIO_TYPES)
    )
    unknown = [s for s in scenarios if s not in SCENARIO_TYPES]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
        print(
            f"choose from: {', '.join(sorted(SCENARIO_TYPES))}",
            file=sys.stderr,
        )
        return 2
    intensities = (
        tuple(float(x) for x in args.intensities.split(","))
        if args.intensities
        else DEFAULT_INTENSITIES
    )
    ages = (
        tuple(float(x) for x in args.ages.split(","))
        if args.ages
        else DEFAULT_AGE_GRID
    )
    seed = resolve_fault_seed(args.seed)

    data = StudyData(n_users=6, seed=5)
    common = dict(
        victim_ids=(0, 1),
        attacker_ids=(4, 5),
        num_features=args.features,
        n_jobs=args.jobs,
        seed=seed,
    )
    cells = run_scenario_sweep(
        data,
        scenarios=scenarios,
        intensities=intensities,
        age_grid=ages,
        **common,
    )
    mitigation = run_mitigation_sweep(data, age_grid=ages, **common)
    report = build_scenario_report(cells, mitigation, seed=seed, label="cli")
    if args.json:
        json.dump(report, sys.stdout, indent=2)
        print()
    else:
        print(render_scenario_markdown(report))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    from .core import EmulatingAttacker, EnrollmentOptions, P2Auth, RandomAttacker
    from .physio import TrialSynthesizer, sample_population

    pin = args.pin
    rng = np.random.default_rng(args.seed)
    users = sample_population(12, seed=args.seed)
    synth = TrialSynthesizer()
    legit = users[0]

    print(f"Enrolling simulated user 0 with PIN {pin!r} ...")
    enrollment = [synth.synthesize_trial(legit, pin, rng) for _ in range(9)]
    third_party = [
        synth.synthesize_trial(u, pin, rng) for u in users[1:10] for _ in range(10)
    ]
    auth = P2Auth(pin=pin, options=EnrollmentOptions(num_features=2520))
    auth.enroll(enrollment, third_party)

    accepted = sum(
        auth.authenticate(synth.synthesize_trial(legit, pin, rng)).accepted
        for _ in range(args.attempts)
    )
    print(f"legitimate entries accepted : {accepted}/{args.attempts}")

    random_attacker = RandomAttacker(users[10], synth, rng)
    rejected = sum(
        not auth.authenticate(random_attacker.attempt()).accepted
        for _ in range(args.attempts)
    )
    print(f"random attacks rejected     : {rejected}/{args.attempts}")

    emulator = EmulatingAttacker(users[11], legit, synth, rng)
    rejected = sum(
        not auth.authenticate(emulator.attempt(pin)).accepted
        for _ in range(args.attempts)
    )
    print(f"emulating attacks rejected  : {rejected}/{args.attempts}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .physio import TrialSynthesizer, sample_population

    users = sample_population(args.user + 1, seed=args.seed)
    synth = TrialSynthesizer()
    rng = np.random.default_rng(args.trial_seed)
    trial = synth.synthesize_trial(
        users[args.user], args.pin, rng, one_handed=not args.two_handed
    )
    rec = trial.recording

    out = open(args.out, "w") if args.out else sys.stdout
    try:
        labels = ",".join(info.label for info in rec.channels)
        out.write(f"time,{labels}\n")
        times = rec.time_axis()
        for i in range(rec.n_samples):
            row = ",".join(f"{v:.6f}" for v in rec.samples[:, i])
            out.write(f"{times[i]:.3f},{row}\n")
    finally:
        if args.out:
            out.close()

    print(
        f"# user={trial.user_id} pin={trial.pin} fs={rec.fs:.0f}Hz "
        f"samples={rec.n_samples}",
        file=sys.stderr,
    )
    for event in trial.events:
        print(
            f"# key {event.key}: true={event.true_time:.3f}s "
            f"reported={event.reported_time:.3f}s hand={event.hand.value}",
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .core import EnrollmentOptions, ModelRegistry
    from .service import AuthService
    from .service.http import serve as http_serve

    backend = None
    if args.packed:
        from .core.backends import ShardedPackedBackend

        backend = ShardedPackedBackend(args.packed)
    from .config import PipelineConfig
    from .core import check_enrollment_quality
    from .data import StudyData
    from .errors import EnrollmentError

    options = EnrollmentOptions(num_features=args.features)
    registry = ModelRegistry(
        capacity=args.capacity,
        backend=backend,
        options=options,
    )

    n = args.synthetic or 0
    pin = args.pin
    n_trials = 9
    data = StudyData(n_users=n + 2, seed=args.seed or 0)
    config = PipelineConfig()

    def usable_trials(user: int) -> list:
        # Some synthetic entries fail the enrollment quality gate
        # (weak keystroke artifacts), exactly as real captures
        # would; emulate the re-prompt by generating extras and
        # keeping the first n_trials that pass on their own.
        picked = []
        for index in range(4 * n_trials):
            trial = data.trials(user, pin, "one_handed", index + 1)[index]
            try:
                check_enrollment_quality([trial], config, options)
            except EnrollmentError:
                continue
            picked.append(trial)
            if len(picked) == n_trials:
                return picked
        raise EnrollmentError(
            f"synthetic user {user} produced only {len(picked)}/"
            f"{n_trials} gate-passing trials; try another --seed"
        )

    # Wire enrollment needs a server-side negatives corpus; the last
    # two simulated users are donors and are never enrolled themselves.
    print("generating third-party negative corpus ...", file=sys.stderr)
    third = [t for v in (n, n + 1) for t in usable_trials(v)]

    service = AuthService(
        registry,
        third_party_trials=third,
        stripes=args.stripes,
        max_workers=args.workers,
        session_capacity=args.sessions,
    )

    if args.synthetic:
        print(
            f"enrolling {n} synthetic users (pin {pin!r}, "
            f"{args.features} features) ...",
            file=sys.stderr,
        )
        for u in range(n):
            uid = f"u{u:07d}"
            registry.enroll(uid, pin, usable_trials(u), third)
            service.adopt_user(uid, pin)
    elif args.packed:
        users = registry.list_users()
        print(
            f"adopting {len(users)} packed users (pin {args.pin!r}) ...",
            file=sys.stderr,
        )
        for uid in users:
            service.adopt_user(uid, args.pin)

    print(f"listening on http://{args.host}:{args.port}", file=sys.stderr)
    try:
        asyncio.run(http_serve(service, args.host, args.port))
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="P2Auth reproduction (ICDCS 2023) command-line interface",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {__version__}",
        help="print the package version and exit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    lst = sub.add_parser("list", help="list available experiments")
    _add_common_options(
        lst,
        jobs_help="accepted for interface uniformity; listing runs no jobs",
        seed_help="accepted for interface uniformity; listing uses no seed",
    )
    lst.set_defaults(func=_cmd_list)

    exp = sub.add_parser("experiment", help="run a paper experiment")
    exp.add_argument("id", help="fig8..fig17, tab1, or 'all'")
    exp.add_argument(
        "--scale",
        choices=("smoke", "default", "paper"),
        default="smoke",
        help="evaluation scale (default: smoke)",
    )
    _add_common_options(
        exp, seed_help="override the scale's population seed"
    )
    exp.set_defaults(func=_cmd_experiment)

    rob = sub.add_parser(
        "robustness", help="fault-injection sweep (FRR/FAR per fault cell)"
    )
    rob.add_argument(
        "--faults",
        default=None,
        help="comma-separated fault names (default: all registered faults)",
    )
    rob.add_argument(
        "--intensities",
        default=None,
        help="comma-separated intensities in [0,1] (default: 0,0.25,0.5,1)",
    )
    rob.add_argument(
        "--features",
        type=int,
        default=2520,
        help="MiniRocket feature count for enrollment (default: 2520)",
    )
    _add_common_options(
        rob,
        jobs_help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
        seed_help="fault seed (default: REPRO_FAULT_SEED or 0)",
    )
    rob.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )
    rob.set_defaults(func=_cmd_robustness)

    scen = sub.add_parser(
        "scenarios",
        help="daily-wear scenario sweep: motion states, template aging, "
        "cross-device transfer, and mitigation policies",
    )
    scen.add_argument(
        "--scenarios",
        default=None,
        help="comma-separated scenario names (default: all registered)",
    )
    scen.add_argument(
        "--intensities",
        default=None,
        help="comma-separated intensities in [0,1] (default: 0,0.25,0.5,1)",
    )
    scen.add_argument(
        "--ages",
        default=None,
        help="comma-separated template ages in days (default: 0,30,60,120)",
    )
    scen.add_argument(
        "--features",
        type=int,
        default=2520,
        help="MiniRocket feature count for enrollment (default: 2520)",
    )
    _add_common_options(
        scen,
        jobs_help="worker processes (default: REPRO_N_JOBS or 1; 0 = all cores)",
        seed_help="fault seed (default: REPRO_FAULT_SEED or 0)",
    )
    scen.add_argument(
        "--json", action="store_true", help="emit the JSON report on stdout"
    )
    scen.set_defaults(func=_cmd_scenarios)

    demo = sub.add_parser("demo", help="enroll + authenticate + attacks")
    demo.add_argument("--pin", default="1628")
    demo.add_argument("--attempts", type=int, default=10)
    _add_common_options(
        demo,
        jobs_help="accepted for interface uniformity; the demo runs serially",
        seed_help="population and trial seed (default: 7)",
        seed_default=7,
    )
    demo.set_defaults(func=_cmd_demo)

    sim = sub.add_parser("simulate", help="dump one synthetic trial as CSV")
    sim.add_argument("--user", type=int, default=0)
    sim.add_argument("--pin", default="1628")
    sim.add_argument("--trial-seed", type=int, default=0)
    sim.add_argument("--two-handed", action="store_true")
    sim.add_argument("--out", help="output CSV path (default: stdout)")
    _add_common_options(
        sim,
        jobs_help="accepted for interface uniformity; simulation is serial",
        seed_help="population seed (default: 0)",
        seed_default=0,
    )
    sim.set_defaults(func=_cmd_simulate)

    srv = sub.add_parser(
        "serve", help="run the HTTP authentication service"
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8314)
    srv.add_argument(
        "--synthetic",
        type=int,
        default=0,
        metavar="N",
        help="enroll N synthetic demo users before serving",
    )
    srv.add_argument(
        "--packed",
        default=None,
        metavar="DIR",
        help="serve an existing sharded packed store",
    )
    srv.add_argument(
        "--pin",
        default="1628",
        help="PIN shared by synthetic/packed populations (default: 1628)",
    )
    srv.add_argument(
        "--features",
        type=int,
        default=840,
        help="MiniRocket feature count for synthetic enrollment",
    )
    srv.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="registry LRU capacity (default: unbounded)",
    )
    srv.add_argument(
        "--sessions", type=int, default=1024, help="live session slots"
    )
    srv.add_argument(
        "--workers", type=int, default=4, help="engine thread-pool size"
    )
    srv.add_argument(
        "--stripes", type=int, default=64, help="per-user lock stripes"
    )
    _add_common_options(
        srv,
        jobs_help="accepted for interface uniformity; the service "
        "sizes its own pool via --workers",
        seed_help="synthetic population seed (default: 0)",
        seed_default=0,
    )
    srv.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
