"""Fault-injection foundations: the injector contract and seeding rules.

A fault injector is a frozen dataclass with a single ``intensity`` knob
in ``[0, 1]`` and an ``apply(trial, rng)`` method returning a new
:class:`~repro.types.PinEntryTrial`. Two properties hold for every
injector in :mod:`repro.faults`:

- **Bit-exact no-op at zero** — ``apply`` returns the input trial
  object untouched when ``intensity == 0``, so a sweep's zero column is
  guaranteed identical to the clean baseline (parity-tested).
- **Seeded determinism** — all randomness comes from the caller-supplied
  ``numpy`` generator; :func:`fault_rng` derives one from stable content
  (sweep seed, fault name, grid coordinates), so parallel sweep rows
  reproduce serial rows exactly.

``REPRO_FAULT_SEED`` plays the role ``REPRO_N_JOBS`` plays for the
fan-out: an environment-level default consulted when no explicit seed
is given (see :func:`resolve_fault_seed`).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import PinEntryTrial

#: Environment variable consulted when no explicit fault seed is given.
FAULT_SEED_ENV = "REPRO_FAULT_SEED"


def resolve_fault_seed(seed: Optional[int] = None) -> int:
    """Resolve the sweep fault seed: explicit value, then env var, then 0.

    Args:
        seed: requested seed; ``None`` consults ``REPRO_FAULT_SEED``.

    Returns:
        A non-negative integer seed.

    Raises:
        ConfigurationError: on a negative seed or a ``REPRO_FAULT_SEED``
            value that does not parse as an integer — operator mistakes
            that must fail loudly instead of silently changing the sweep.
    """
    source = "seed"
    if seed is None:
        raw = os.environ.get(FAULT_SEED_ENV, "").strip()
        if not raw:
            return 0
        try:
            seed = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{FAULT_SEED_ENV} must be an integer, got {raw!r}"
            )
        source = FAULT_SEED_ENV
    seed = int(seed)
    if seed < 0:
        raise ConfigurationError(f"{source} must be >= 0, got {seed}")
    return seed


def stable_fault_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from heterogeneous key parts.

    The same content-hash scheme :class:`repro.data.StudyData` uses for
    trial generation: sweeps stay deterministic across processes and
    platforms because the seed depends only on the key parts' reprs.
    """
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def fault_rng(*parts: object) -> np.random.Generator:
    """A deterministic generator keyed by sweep coordinates."""
    return np.random.default_rng(stable_fault_seed(*parts))


@dataclass(frozen=True)
class FaultInjector:
    """Base class of all fault injectors.

    Attributes:
        intensity: severity knob in ``[0, 1]``. Zero is a guaranteed
            bit-exact no-op; one is the worst case the fault models.
    """

    intensity: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.intensity <= 1.0:
            raise ConfigurationError(
                f"fault intensity must be in [0, 1], got {self.intensity}"
            )

    def apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        """Return a faulted copy of ``trial`` (or ``trial`` itself at 0).

        Args:
            trial: the clean trial.
            rng: seeded generator driving every random choice.
        """
        # reprolint: disable-next=RL005 -- exact no-op sentinel, not a tolerance
        if self.intensity == 0.0:
            return trial
        return self._apply(trial, rng)

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        raise NotImplementedError


@dataclass(frozen=True)
class FaultChain:
    """Apply several injectors in sequence (composition).

    A chain of all-zero-intensity injectors is itself a bit-exact no-op:
    each stage hands the identical trial object through.
    """

    faults: Tuple[FaultInjector, ...]

    def apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        """Apply every fault in order, threading one generator through."""
        for fault in self.faults:
            trial = fault.apply(trial, rng)
        return trial
