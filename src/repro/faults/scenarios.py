"""Daily-wear scenario transforms: sustained whole-trial conditions.

The fault taxonomy in :mod:`repro.faults.injectors` models *transient*
failures — a burst of lost frames, one dead channel. Daily wear is a
different regime: "Exploring Reliable PPG Authentication on
Smartwatches in Daily Scenarios" shows sustained motion states (walking
while typing, commuting) and perfusion/contact changes degrade
wrist-PPG auth for the *whole* entry, not a window of it.

A scenario transform composes the existing injectors into one
sustained, named condition with the same contract every injector has:
a frozen dataclass, one ``intensity`` knob in ``[0, 1]``, a bit-exact
no-op at intensity 0 (the input trial object is returned), and all
randomness from the caller's seeded generator — so scenario sweeps are
deterministic and parallel rows equal serial rows.

Registered scenarios:

- ``resting`` — seated desk wear: slight contact-pressure gain wander,
  a rare posture shift. The near-clean control.
- ``typing_while_walking`` — step-cadence (~1.8 Hz) motion bursts
  sustained across the entry plus strap-movement gain drift.
- ``commute`` — vehicle vibration (wide, frequent bumps), pocket-BLE
  sample loss, and strong contact-pressure drift.
- ``cross_device`` — the enrollment is probed with another device's
  capture path (:class:`repro.sensing.transfer.CrossDeviceTransform`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import PinEntryTrial
from .base import FaultChain, FaultInjector
from .injectors import GainDrift, MotionArtifactBurst, SampleDropout


@dataclass(frozen=True)
class MotionStateScenario(FaultInjector):
    """A sustained daily-wear motion state.

    Composes :class:`MotionArtifactBurst` at a fixed burst *cadence*
    (bursts per second of recording, so longer entries get
    proportionally more bursts), :class:`GainDrift` for contact
    pressure, and optionally :class:`SampleDropout` for radio loss —
    all scaled by this scenario's single ``intensity`` knob.

    Attributes:
        bursts_per_second: sustained motion-burst cadence.
        burst_width_s: (min, max) burst width, seconds.
        burst_amplitude: burst amplitude at intensity 1, as a multiple
            of the per-channel peak-to-peak range.
        gain_fraction: fraction of ``intensity`` forwarded to the
            contact-pressure :class:`GainDrift`.
        dropout_fraction: fraction of samples lost at intensity 1
            (0 disables the radio-loss stage).
    """

    bursts_per_second: float = 1.0
    burst_width_s: Tuple[float, float] = (0.3, 0.8)
    burst_amplitude: float = 1.0
    gain_fraction: float = 0.4
    dropout_fraction: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bursts_per_second < 0:
            raise ConfigurationError("bursts_per_second must be >= 0")
        if not 0.0 <= self.gain_fraction <= 1.0:
            raise ConfigurationError("gain_fraction must be in [0, 1]")
        if not 0.0 <= self.dropout_fraction <= 1.0:
            raise ConfigurationError("dropout_fraction must be in [0, 1]")

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        stages: list[FaultInjector] = []
        if self.bursts_per_second > 0:
            n_bursts = max(
                1,
                int(round(self.bursts_per_second * trial.recording.duration)),
            )
            stages.append(
                MotionArtifactBurst(
                    intensity=self.intensity,
                    n_bursts=n_bursts,
                    width_s=self.burst_width_s,
                    max_relative_amplitude=self.burst_amplitude,
                )
            )
        if self.gain_fraction > 0:
            stages.append(
                GainDrift(intensity=self.intensity * self.gain_fraction)
            )
        if self.dropout_fraction > 0:
            stages.append(
                SampleDropout(
                    intensity=self.intensity,
                    max_drop_fraction=self.dropout_fraction,
                )
            )
        return FaultChain(tuple(stages)).apply(trial, rng)


def _resting(intensity: float) -> FaultInjector:
    return MotionStateScenario(
        intensity=intensity,
        bursts_per_second=0.08,
        burst_width_s=(0.5, 1.2),
        burst_amplitude=0.35,
        gain_fraction=0.3,
    )


def _typing_while_walking(intensity: float) -> FaultInjector:
    return MotionStateScenario(
        intensity=intensity,
        bursts_per_second=1.8,
        burst_width_s=(0.18, 0.38),
        burst_amplitude=0.9,
        gain_fraction=0.4,
    )


def _commute(intensity: float) -> FaultInjector:
    return MotionStateScenario(
        intensity=intensity,
        bursts_per_second=0.8,
        burst_width_s=(0.4, 1.1),
        burst_amplitude=1.3,
        gain_fraction=0.6,
        dropout_fraction=0.08,
    )


def _cross_device(intensity: float) -> FaultInjector:
    # Imported lazily: repro.sensing.transfer subclasses FaultInjector
    # from this package, so a module-level import would be circular.
    from ..sensing.transfer import CrossDeviceTransform

    return CrossDeviceTransform(intensity=intensity)


#: Registry of daily-wear scenarios, keyed by sweep/CLI name. Every
#: factory takes the intensity as its only argument.
SCENARIO_TYPES: Dict[str, Callable[[float], FaultInjector]] = {  # concurrency: immutable-after-init
    "resting": _resting,
    "typing_while_walking": _typing_while_walking,
    "commute": _commute,
    "cross_device": _cross_device,
}


def make_scenario(name: str, intensity: float) -> FaultInjector:
    """Build a registered scenario transform by name.

    Raises:
        ConfigurationError: on an unknown scenario name.
    """
    factory = SCENARIO_TYPES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown scenario {name!r}; choose from {sorted(SCENARIO_TYPES)}"
        )
    return factory(intensity)
