"""The fault taxonomy: concrete injectors for field-realistic failures.

Each injector models one failure mode of the phone + BLE-wearable
deployment (Sec. III/VII): radio loss, clock disagreement, sensor
degradation, and motion. All of them scale with a single ``intensity``
knob and are bit-exact no-ops at zero (see
:class:`~repro.faults.base.FaultInjector`).

Dropped PPG samples are marked ``NaN`` by default: a BLE receiver knows
*which* frames went missing (sequence numbers), so "known-missing" is
the honest representation and is what the degradation policy's bounded
gap repair targets. ``fill="hold"`` models a naive receiver that
repeats the last frame instead.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, List, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import KeystrokeEvent, PinEntryTrial
from .base import FaultInjector

#: Fill modes for dropped samples.
DROPOUT_FILLS = ("nan", "hold")


def _with_samples(trial: PinEntryTrial, samples: np.ndarray) -> PinEntryTrial:
    return dataclasses.replace(
        trial, recording=trial.recording.with_samples(samples)
    )


def _with_events(
    trial: PinEntryTrial, events: Tuple[KeystrokeEvent, ...]
) -> PinEntryTrial:
    return dataclasses.replace(trial, events=events)


@dataclass(frozen=True)
class SampleDropout(FaultInjector):
    """BLE-style sample loss: random bursts of frames never arrive.

    Attributes:
        max_drop_fraction: fraction of samples lost at intensity 1.
        max_burst_s: longest single burst, seconds.
        fill: "nan" (known-missing, repairable) or "hold" (naive
            receiver repeating the last received frame).
    """

    max_drop_fraction: float = 0.25
    max_burst_s: float = 0.12
    fill: str = "nan"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fill not in DROPOUT_FILLS:
            raise ConfigurationError(
                f"fill must be one of {DROPOUT_FILLS}, got {self.fill!r}"
            )
        if not 0.0 < self.max_drop_fraction <= 1.0:
            raise ConfigurationError("max_drop_fraction must be in (0, 1]")

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        recording = trial.recording
        n = recording.n_samples
        max_burst = max(1, int(round(self.max_burst_s * recording.fs)))
        target = int(round(self.intensity * self.max_drop_fraction * n))
        mask = np.zeros(n, dtype=bool)
        # A BLE frame carries all channels, so the mask is shared.
        while int(mask.sum()) < target:
            length = int(rng.integers(1, max_burst + 1))
            start = int(rng.integers(0, max(1, n - length + 1)))
            mask[start:start + length] = True
        if not mask.any():
            return trial
        samples = recording.samples.copy()
        if self.fill == "nan":
            samples[:, mask] = np.nan
        else:
            # Zero-order hold: repeat the last received frame across
            # each burst; a burst at the head repeats the first frame.
            held = np.where(mask, -1, np.arange(n))
            held = np.maximum.accumulate(held)
            first_good = int(np.argmax(~mask))
            held[held < 0] = first_good
            samples = samples[:, held]
        return _with_samples(trial, samples)


@dataclass(frozen=True)
class ClockDrift(FaultInjector):
    """Phone↔wearable clock disagreement on reported keystroke times.

    A constant offset (communication-path asymmetry) plus a linear
    drift (crystal tolerance) corrupt every ``reported_time``; the
    press-order invariant is preserved because the drift is monotone.

    Attributes:
        max_offset_s: offset magnitude at intensity 1, seconds.
        max_drift: drift rate magnitude at intensity 1 (s per s).
    """

    max_offset_s: float = 0.15
    max_drift: float = 0.04

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        offset = float(rng.choice((-1.0, 1.0))) * self.intensity * self.max_offset_s
        drift = float(rng.choice((-1.0, 1.0))) * self.intensity * self.max_drift
        start = trial.recording.start_time
        events = tuple(
            dataclasses.replace(
                event,
                reported_time=event.reported_time
                + offset
                + drift * (event.reported_time - start),
            )
            for event in trial.events
        )
        return _with_events(trial, events)


@dataclass(frozen=True)
class TimestampDuplication(FaultInjector):
    """BLE notification coalescing: a keystroke inherits the previous
    keystroke's timestamp.

    When the radio stack batches notifications, distinct presses reach
    the wearable time-stamped together. Each event after the first is
    stamped with its predecessor's (possibly already duplicated)
    reported time with probability ``intensity``.
    """

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        events: List[KeystrokeEvent] = list(trial.events)
        for i in range(1, len(events)):
            if float(rng.random()) < self.intensity:
                events[i] = dataclasses.replace(
                    events[i], reported_time=events[i - 1].reported_time
                )
        return _with_events(trial, tuple(events))


@dataclass(frozen=True)
class ChannelDropout(FaultInjector):
    """Mid-trial channel death: one channel stops delivering data.

    A randomly chosen channel goes ``NaN`` from an onset point to the
    end of the recording. ``intensity`` sets the dead fraction of the
    trial: 1.0 kills the channel from the first sample — the "single
    dead channel" case the degradation ladder must recover.
    """

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        recording = trial.recording
        channel = int(rng.integers(0, recording.n_channels))
        onset = int(round((1.0 - self.intensity) * recording.n_samples))
        if onset >= recording.n_samples:
            return trial
        samples = recording.samples.copy()
        samples[channel, onset:] = np.nan
        return _with_samples(trial, samples)


@dataclass(frozen=True)
class SensorDisconnect(FaultInjector):
    """Sensor disconnect: the recording truncates before the entry ends.

    Attributes:
        max_fraction: tail fraction lost at intensity 1. Keystroke
            events are *not* rewritten — the whole point is that late
            events now reference samples that never arrived.
    """

    max_fraction: float = 0.6

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        recording = trial.recording
        n = recording.n_samples
        lost = int(round(self.intensity * self.max_fraction * n))
        keep = max(8, n - lost)
        if keep >= n:
            return trial
        return _with_samples(trial, recording.samples[:, :keep].copy())


@dataclass(frozen=True)
class GainDrift(FaultInjector):
    """Slow per-channel gain drift (LED aging, contact pressure).

    Each channel's amplitude ramps linearly to ``1 ± intensity *
    max_gain`` over the trial, with an independent random direction per
    channel.

    Attributes:
        max_gain: relative gain change at intensity 1.
    """

    max_gain: float = 0.75

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        recording = trial.recording
        signs = rng.choice((-1.0, 1.0), size=recording.n_channels)
        ramp = np.linspace(0.0, 1.0, recording.n_samples)
        factors = 1.0 + signs[:, np.newaxis] * self.intensity * self.max_gain * ramp
        return _with_samples(trial, recording.samples * factors)


@dataclass(frozen=True)
class MotionArtifactBurst(FaultInjector):
    """Motion-artifact bursts: smooth high-amplitude wrist-motion bumps.

    Adds Hann-windowed low-frequency bursts, coherent across channels
    (the wrist moves as one), with amplitude scaling with ``intensity``
    relative to each channel's own dynamic range.

    Attributes:
        n_bursts: bursts per entry.
        width_s: (min, max) burst width in seconds.
        max_relative_amplitude: burst amplitude at intensity 1, as a
            multiple of the per-channel peak-to-peak range.
    """

    n_bursts: int = 2
    width_s: Tuple[float, float] = (0.3, 0.8)
    max_relative_amplitude: float = 1.5

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        recording = trial.recording
        n = recording.n_samples
        samples = recording.samples.copy()
        ptp = np.ptp(samples, axis=1)
        scale = self.intensity * self.max_relative_amplitude
        for _ in range(self.n_bursts):
            width = max(
                4,
                int(round(float(rng.uniform(*self.width_s)) * recording.fs)),
            )
            width = min(width, n)
            start = int(rng.integers(0, max(1, n - width + 1)))
            sign = float(rng.choice((-1.0, 1.0)))
            bump = np.hanning(width) * sign
            samples[:, start:start + width] += (
                scale * ptp[:, np.newaxis] * bump[np.newaxis, :]
            )
        return _with_samples(trial, samples)


#: Registry of all fault types, keyed by sweep/CLI name. Every
#: constructor takes the intensity as its only required argument.
FAULT_TYPES: Dict[str, Callable[[float], FaultInjector]] = {  # concurrency: immutable-after-init
    "sample_dropout": SampleDropout,
    "clock_drift": ClockDrift,
    "timestamp_duplication": TimestampDuplication,
    "channel_dropout": ChannelDropout,
    "sensor_disconnect": SensorDisconnect,
    "gain_drift": GainDrift,
    "motion_burst": MotionArtifactBurst,
}


def make_fault(name: str, intensity: float) -> FaultInjector:
    """Build a registered fault by name.

    Raises:
        ConfigurationError: on an unknown fault name.
    """
    factory = FAULT_TYPES.get(name)
    if factory is None:
        raise ConfigurationError(
            f"unknown fault {name!r}; choose from {sorted(FAULT_TYPES)}"
        )
    return factory(intensity)
