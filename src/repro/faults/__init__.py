"""Seeded, composable fault injection for robustness evaluation.

``repro.faults`` models the sensing failures a deployed P2Auth sees in
the field — BLE sample loss, clock drift and timestamp coalescing,
channel death, sensor disconnects, gain drift, and motion bursts. Every
injector is a frozen dataclass with one ``intensity`` knob, is a
bit-exact no-op at intensity 0, and draws all randomness from an
explicit seeded generator, so fault sweeps are deterministic and
parallel rows match serial rows (see :mod:`repro.eval.robustness`).
"""

from .base import (
    FAULT_SEED_ENV,
    FaultChain,
    FaultInjector,
    fault_rng,
    resolve_fault_seed,
    stable_fault_seed,
)
from .injectors import (
    FAULT_TYPES,
    ChannelDropout,
    ClockDrift,
    GainDrift,
    MotionArtifactBurst,
    SampleDropout,
    SensorDisconnect,
    TimestampDuplication,
    make_fault,
)
from .scenarios import SCENARIO_TYPES, MotionStateScenario, make_scenario

__all__ = [
    "FAULT_SEED_ENV",
    "FAULT_TYPES",
    "SCENARIO_TYPES",
    "ChannelDropout",
    "ClockDrift",
    "FaultChain",
    "FaultInjector",
    "GainDrift",
    "MotionArtifactBurst",
    "MotionStateScenario",
    "SampleDropout",
    "SensorDisconnect",
    "TimestampDuplication",
    "fault_rng",
    "make_fault",
    "make_scenario",
    "resolve_fault_seed",
    "stable_fault_seed",
]
