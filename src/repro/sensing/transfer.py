"""Cross-device transfer: probe a device-A enrollment with device-B data.

"PPG as a Bridge" names the transfer problem: a template enrolled on
one device is probed with recordings from another — different optics
placement (channel cross-talk), a different native sampling rate, and
different analog front-end gains and offsets. This module models that
as a trial transform so the scenario sweep can measure how much a
device swap costs without re-enrollment.

The transform follows the faults contract (:class:`FaultInjector`):
one ``intensity`` knob interpolating identity → the full device
difference, a bit-exact no-op at 0, and all randomness (per-unit gain
tolerance) from the caller's seeded generator.

Pipeline contracts are preserved by construction: the probe the
authenticator sees keeps device A's channel count, channel metadata,
sampling rate, and sample count — device B's capture path is emulated
by remixing the channels, round-tripping through the device's native
rate (anti-aliased decimation down, the companion app's linear
interpolation back up), and applying per-channel gain/offset. What the
transform changes is the *information content*, not the container.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..faults.base import FaultInjector
from ..signal.resample import decimate_signal
from ..types import PinEntryTrial

#: One 4x4 remix row layout: output channel i = sum_j mix[i][j] * input j.
_MixMatrix = Tuple[Tuple[float, float, float, float], ...]


@dataclass(frozen=True)
class DeviceProfile:
    """How a replacement device differs from the enrollment prototype.

    Attributes:
        name: registry key.
        channel_mix: ``(n, n)`` remix matrix mapping prototype channels
            to the device's optical view (diagonal-dominant cross-talk
            from different LED/photodiode placement).
        fs: the device's native PPG sampling rate, Hz.
        gains: per-channel analog gain relative to the prototype.
        offsets: per-channel DC offset added after gain.
        gain_tolerance: relative per-unit gain spread (manufacturing
            tolerance), drawn from the caller's generator.
    """

    name: str
    channel_mix: _MixMatrix
    fs: float
    gains: Tuple[float, ...]
    offsets: Tuple[float, ...]
    gain_tolerance: float = 0.02

    def __post_init__(self) -> None:
        matrix = np.asarray(self.channel_mix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ConfigurationError(
                f"channel_mix must be square, got shape {matrix.shape}"
            )
        n = matrix.shape[0]
        if len(self.gains) != n or len(self.offsets) != n:
            raise ConfigurationError(
                f"gains/offsets must have {n} entries to match channel_mix"
            )
        if self.fs <= 0:
            raise ConfigurationError("device sampling rate must be positive")
        if self.gain_tolerance < 0:
            raise ConfigurationError("gain_tolerance must be non-negative")


#: Registered replacement devices. ``watch_b`` is a plausible consumer
#: watch: slightly rotated optics (cross-talk), 64 Hz native rate,
#: hotter red-channel gain. ``band_c`` is a budget fitness band: heavy
#: cross-talk, 25 Hz, weak gains.
DEVICE_PROFILES: Dict[str, DeviceProfile] = {  # concurrency: immutable-after-init
    "watch_b": DeviceProfile(
        name="watch_b",
        channel_mix=(
            (0.88, 0.06, 0.06, 0.00),
            (0.08, 0.84, 0.00, 0.08),
            (0.06, 0.00, 0.88, 0.06),
            (0.00, 0.08, 0.08, 0.84),
        ),
        fs=64.0,
        gains=(0.95, 1.20, 0.90, 1.15),
        offsets=(0.02, -0.01, 0.015, -0.02),
    ),
    "band_c": DeviceProfile(
        name="band_c",
        channel_mix=(
            (0.70, 0.15, 0.15, 0.00),
            (0.18, 0.64, 0.00, 0.18),
            (0.15, 0.00, 0.70, 0.15),
            (0.00, 0.18, 0.18, 0.64),
        ),
        fs=25.0,
        gains=(0.75, 0.70, 0.80, 0.72),
        offsets=(0.05, 0.05, -0.04, -0.04),
        gain_tolerance=0.05,
    ),
}


@dataclass(frozen=True)
class CrossDeviceTransform(FaultInjector):
    """Replay a trial as if captured by a different device.

    ``intensity`` interpolates between the enrollment device (0, a
    bit-exact no-op) and the full replacement-device difference (1):
    the remix matrix, the native-rate round trip, and the gain/offset
    front end all scale with it.

    Attributes:
        device: key into :data:`DEVICE_PROFILES`.
    """

    device: str = "watch_b"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.device not in DEVICE_PROFILES:
            raise ConfigurationError(
                f"unknown device {self.device!r}; "
                f"known: {sorted(DEVICE_PROFILES)}"
            )

    def _apply(
        self, trial: PinEntryTrial, rng: np.random.Generator
    ) -> PinEntryTrial:
        profile = DEVICE_PROFILES[self.device]
        recording = trial.recording
        n = recording.n_channels
        matrix = np.asarray(profile.channel_mix, dtype=np.float64)
        if matrix.shape[0] != n:
            raise ConfigurationError(
                f"device {profile.name!r} mixes {matrix.shape[0]} channels "
                f"but the trial has {n}"
            )
        weight = self.intensity

        # Optics: cross-talk between the prototype's channel views.
        effective = (1.0 - weight) * np.eye(n) + weight * matrix
        samples = effective @ recording.samples

        # Capture rate: decimate (anti-aliased) to the device's
        # effective native rate, then interpolate back to the pipeline
        # rate the way a companion app would.
        fs_device = recording.fs + weight * (profile.fs - recording.fs)
        if fs_device < recording.fs:
            low = decimate_signal(samples, recording.fs, fs_device)
            t_full = np.arange(recording.n_samples) / recording.fs
            t_low = np.arange(low.shape[1]) / fs_device
            samples = np.vstack(
                [np.interp(t_full, t_low, row) for row in low]
            )

        # Analog front end: per-channel gain (with per-unit tolerance)
        # and DC offset.
        gains = 1.0 + weight * (np.asarray(profile.gains) - 1.0)
        gains = gains * (
            1.0
            + weight * profile.gain_tolerance * rng.standard_normal(n)
        )
        offsets = weight * np.asarray(profile.offsets)
        samples = gains[:, np.newaxis] * samples + offsets[:, np.newaxis]

        return dataclasses.replace(
            trial, recording=recording.with_samples(samples)
        )
