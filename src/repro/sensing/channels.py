"""Optical channel mixing: tissue sources -> four PPG channels.

The tissue-level simulation produces three source signals: the cardiac
pulse wave, the *mechanical* keystroke transient, and the *vascular*
(microcirculation) keystroke response. Each of the prototype's four
channels (2 sensor sites x {red, infrared}) observes a different
weighted mixture of the three, plus channel-local noise:

- the two sensor sites couple to the sources with per-user geometry
  weights (wearing position and wrist anatomy);
- infrared light penetrates deeper, so IR channels get a cleaner,
  better-balanced view — the paper finds IR more accurate (Fig. 13b);
- red light is noisier but relatively more sensitive to the superficial
  microvascular (strongly user-specific) component, which is why red
  rejects imposters slightly better (Fig. 13b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..types import ChannelInfo, PROTOTYPE_CHANNELS, Wavelength
from ..physio.noise import NoiseParams, synthesize_noise

#: Index order of the three tissue sources in coupling matrices.
SOURCE_ORDER: Tuple[str, str, str] = ("cardiac", "mechanical", "vascular")


@dataclass(frozen=True)
class SourceSignals:
    """Tissue-level source signals for one trial.

    Attributes:
        cardiac: heartbeat component, shape ``(n_samples,)``.
        mechanical: summed mechanical keystroke transients.
        vascular: summed microvascular keystroke responses.
        fs: sampling rate, Hz.
    """

    cardiac: np.ndarray
    mechanical: np.ndarray
    vascular: np.ndarray
    fs: float

    def __post_init__(self) -> None:
        shapes = {
            np.asarray(self.cardiac).shape,
            np.asarray(self.mechanical).shape,
            np.asarray(self.vascular).shape,
        }
        if len(shapes) != 1:
            raise ConfigurationError(f"source signals must share a shape: {shapes}")
        if self.fs <= 0:
            raise ConfigurationError("sampling rate must be positive")

    @property
    def n_samples(self) -> int:
        """Number of samples in each source."""
        return np.asarray(self.cardiac).shape[0]

    def stack(self) -> np.ndarray:
        """Stack sources in :data:`SOURCE_ORDER`, shape ``(3, n)``."""
        return np.vstack([self.cardiac, self.mechanical, self.vascular])


def _wavelength_weights(
    wavelength: Wavelength, config: SimulationConfig
) -> np.ndarray:
    """Source weights (cardiac, mechanical, vascular) per wavelength."""
    if wavelength is Wavelength.INFRARED:
        return np.array([1.0, 1.0, 0.75])
    # Red: weaker overall optical coupling, but the superficial
    # microvascular response is relatively over-weighted.
    return np.array([0.75, 0.6, 0.7 + config.red_specificity_boost])


def _wavelength_noise_factor(
    wavelength: Wavelength, config: SimulationConfig
) -> float:
    """Noise multiplier per wavelength (red is shallower and noisier)."""
    if wavelength is Wavelength.INFRARED:
        return 1.0
    return config.red_noise_factor


class ChannelMixer:
    """Mixes tissue sources into the prototype's PPG channels.

    Args:
        config: simulation parameters.
        channels: channel layout; defaults to the 4-channel prototype.
    """

    def __init__(
        self,
        config: SimulationConfig,
        channels: Tuple[ChannelInfo, ...] = PROTOTYPE_CHANNELS,
    ) -> None:
        if not channels:
            raise ConfigurationError("at least one channel is required")
        self._config = config
        self._channels = channels

    @property
    def channels(self) -> Tuple[ChannelInfo, ...]:
        """The channel layout this mixer produces."""
        return self._channels

    def mixing_matrix(self, site_coupling: np.ndarray) -> np.ndarray:
        """Channel x source weight matrix for a given user geometry.

        Args:
            site_coupling: user's ``(2, 3)`` site-to-source couplings.

        Returns:
            Array of shape ``(n_channels, 3)``.
        """
        site_coupling = np.asarray(site_coupling, dtype=np.float64)
        if site_coupling.shape != (2, 3):
            raise ConfigurationError(
                f"site coupling must have shape (2, 3), got {site_coupling.shape}"
            )
        rows = []
        for info in self._channels:
            if info.sensor_site not in (0, 1):
                raise ConfigurationError(
                    f"prototype has sensor sites 0 and 1, got {info.sensor_site}"
                )
            wl = _wavelength_weights(info.wavelength, self._config)
            rows.append(site_coupling[info.sensor_site] * wl)
        return np.vstack(rows)

    def mix(
        self,
        sources: SourceSignals,
        site_coupling: np.ndarray,
        noise_params: NoiseParams,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Produce raw channel samples including channel-local noise.

        Args:
            sources: tissue-level source signals.
            site_coupling: user's ``(2, 3)`` geometry couplings.
            noise_params: user's noise levels.
            rng: randomness source.

        Returns:
            Array of shape ``(n_channels, n_samples)``.
        """
        matrix = self.mixing_matrix(site_coupling)
        clean = matrix @ sources.stack()
        noisy = np.empty_like(clean)
        for row, info in enumerate(self._channels):
            factor = _wavelength_noise_factor(info.wavelength, self._config)
            scaled = NoiseParams(
                baseline_amplitude=noise_params.baseline_amplitude,
                noise_std=noise_params.noise_std * factor,
                impulse_rate=noise_params.impulse_rate,
                impulse_amplitude=noise_params.impulse_amplitude * factor,
                fidget_rate=noise_params.fidget_rate,
                fidget_amplitude=noise_params.fidget_amplitude,
                instability=noise_params.instability,
            )
            noise = synthesize_noise(sources.n_samples, sources.fs, scaled, rng)
            noisy[row] = clean[row] + noise
        return noisy
