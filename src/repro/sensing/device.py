"""Wearable prototype facade.

:class:`WearablePrototype` bundles the channel mixer, the ADC, and the
timestamp channel into the single object the trial synthesizer talks
to — the software twin of the Section V-A hardware (two MAX30101
modules on a wrist band, an EVK/STM32 capture path back to a PC, and
an Android phone reporting keystroke times).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..config import SimulationConfig
from ..physio.noise import NoiseParams
from ..types import ChannelInfo, PPGRecording, PROTOTYPE_CHANNELS
from .adc import quantize
from .channels import ChannelMixer, SourceSignals
from .timing import report_keystroke_times


class WearablePrototype:
    """The simulated capture device.

    Args:
        config: simulation parameters (sampling rates, ADC, jitter).
        channels: channel layout; defaults to the 4-channel prototype.
    """

    def __init__(
        self,
        config: SimulationConfig,
        channels: Tuple[ChannelInfo, ...] = PROTOTYPE_CHANNELS,
    ) -> None:
        self._config = config
        self._mixer = ChannelMixer(config, channels)

    @property
    def config(self) -> SimulationConfig:
        """Simulation parameters in effect."""
        return self._config

    @property
    def channels(self) -> Tuple[ChannelInfo, ...]:
        """Channel layout this device records."""
        return self._mixer.channels

    def capture(
        self,
        sources: SourceSignals,
        site_coupling: np.ndarray,
        noise_params: NoiseParams,
        rng: np.random.Generator,
    ) -> PPGRecording:
        """Record a PPG trace from tissue-level sources.

        Mixing, channel noise, and ADC quantization are applied in the
        order the physical signal path imposes.
        """
        raw = self._mixer.mix(sources, site_coupling, noise_params, rng)
        digitized = quantize(
            raw, bits=self._config.adc_bits, full_scale=self._config.adc_full_scale
        )
        return PPGRecording(
            samples=digitized, fs=sources.fs, channels=self._mixer.channels
        )

    def report_times(
        self, true_times: Sequence[float], rng: np.random.Generator
    ) -> np.ndarray:
        """Run press times through the phone-to-wearable channel."""
        return report_keystroke_times(
            true_times, jitter=self._config.timestamp_jitter, rng=rng
        )
