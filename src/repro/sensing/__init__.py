"""Sensing layer: from tissue-level signals to sensor channels.

Models the wearable prototype of Section V-A: two MAX30101-style
optical modules (each with a red and an infrared LED) on either side of
the wrist sampling at 100 Hz, an 18-bit ADC, a 75 Hz LIS2DH12
accelerometer, and the phone-to-wearable timestamp channel whose
communication delay makes keystroke timestamps coarse.
"""

from .adc import quantize
from .channels import ChannelMixer, SourceSignals
from .device import WearablePrototype
from .timing import report_keystroke_times
from .transfer import DEVICE_PROFILES, CrossDeviceTransform, DeviceProfile

__all__ = [
    "ChannelMixer",
    "CrossDeviceTransform",
    "DEVICE_PROFILES",
    "DeviceProfile",
    "SourceSignals",
    "WearablePrototype",
    "quantize",
    "report_keystroke_times",
]
