"""ADC quantization for the optical front end.

The MAX30101 digitizes the photodetector current with an 18-bit ADC.
Quantization is nearly invisible at 18 bits but becomes a real effect
in the low-resolution ablations, and clipping bounds the occasional
impulse spikes the way a real front end would.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError


def quantize(
    samples: np.ndarray, bits: int = 18, full_scale: float = 24.0
) -> np.ndarray:
    """Quantize ``samples`` to ``bits`` resolution over ``±full_scale``.

    Args:
        samples: input array (any shape).
        bits: ADC resolution in bits.
        full_scale: half-range of the converter; inputs outside
            ``[-full_scale, +full_scale]`` are clipped.

    Returns:
        Quantized array of the same shape, dtype float64.
    """
    if bits < 2:
        raise ConfigurationError("ADC must have at least 2 bits")
    if full_scale <= 0:
        raise ConfigurationError("full scale must be positive")
    samples = np.asarray(samples, dtype=np.float64)
    levels = 2 ** (bits - 1)
    step = full_scale / levels
    clipped = np.clip(samples, -full_scale, full_scale - step)
    return np.round(clipped / step) * step
