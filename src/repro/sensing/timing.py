"""Phone-to-wearable keystroke timestamp channel.

The phone records the moment of each key press and forwards it to the
PPG acquisition side. The communication delay between the two devices
changes dynamically (Section IV-B.1.2 of the paper), so the timestamps
arriving with the PPG stream are only coarse — which is exactly why
the pipeline includes a fine-grained calibration module.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def report_keystroke_times(
    true_times: Sequence[float],
    jitter: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Corrupt ground-truth press times with communication delay.

    Each reported time is the true time plus an independent uniform
    offset in ``[-jitter, +jitter]`` (clock skew can make the recorded
    moment early as well as late, since the phone clock and the PPG
    stream clock are aligned only at session start).

    Args:
        true_times: ground-truth press moments, seconds.
        jitter: bound of the uniform offset, seconds.
        rng: randomness source.

    Returns:
        Array of reported times, same length as ``true_times``.
    """
    if jitter < 0:
        raise ConfigurationError("timestamp jitter must be non-negative")
    true_times = np.asarray(list(true_times), dtype=np.float64)
    offsets = rng.uniform(-jitter, jitter, size=true_times.shape)
    return true_times + offsets
