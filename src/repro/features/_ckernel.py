"""On-demand build and loading of the compiled MiniRocket kernel.

``minirocket_kernel.c`` is compiled into a shared library with the
system C compiler the first time it is needed and cached next to the
package (``_build/``, keyed by a source/flags digest, so edits
invalidate the cache).  Everything here is best-effort: any failure —
no compiler, read-only package directory, unsupported flags — simply
disables the fast path and :mod:`repro.features.minirocket` falls back
to the NumPy engine.  No build tooling is required at install time.

The compile flags matter for correctness, not just speed:
``-ffp-contract=off`` forbids fused multiply-adds and ``-ffast-math``
is never used, so the kernel's floating-point results are bit-identical
to the NumPy reference loop (asserted by the parity tests).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import threading
from pathlib import Path
from typing import List, Optional

import numpy as np

_SOURCE = Path(__file__).with_name("minirocket_kernel.c")
_BUILD_DIR = Path(__file__).with_name("_build")

#: Compilers and flag sets to try, most specific first.  -march=native
#: lets gcc vectorize the compare/count loops with whatever SIMD the
#: host has; the plain -O3 fallback still beats NumPy comfortably.
_COMPILERS = ("cc", "gcc", "clang")
_FLAG_SETS = (
    ["-O3", "-march=native", "-ffp-contract=off", "-funroll-loops"],
    ["-O3", "-ffp-contract=off", "-funroll-loops"],
    ["-O3", "-ffp-contract=off"],
)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None  # guarded-by: _lock
_failed = False  # guarded-by: _lock


def _try_compile(so_path: Path) -> bool:
    source = str(_SOURCE)
    for compiler in _COMPILERS:
        for flags in _FLAG_SETS:
            tmp = so_path.with_name(so_path.name + f".tmp{os.getpid()}")
            cmd = [compiler, *flags, "-shared", "-fPIC", "-o", str(tmp), source]
            try:
                result = subprocess.run(
                    cmd,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    timeout=120,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if result.returncode == 0 and tmp.exists():
                os.replace(tmp, so_path)
                return True
            tmp.unlink(missing_ok=True)
    return False


def _build_digest() -> str:
    payload = _SOURCE.read_bytes() + repr(_FLAG_SETS).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _failed
    # Double-checked fast path: the unlocked reads race the locked
    # writer benignly — a stale None only sends the caller into the
    # locked slow path, and CPython publishes the CDLL reference
    # atomically.
    # reprolint: disable-next=RL010 -- double-checked fast path; stale read falls through to the lock
    if _lib is not None or _failed:
        return _lib  # reprolint: disable=RL010 -- same double-checked fast path
    with _lock:
        if _lib is not None or _failed:
            return _lib
        try:
            so_path = _BUILD_DIR / f"minirocket_kernel-{_build_digest()}.so"
            if not so_path.exists():
                _BUILD_DIR.mkdir(exist_ok=True)
                # reprolint: disable-next=RL012 -- this lock exists to serialize the one-off build; the authenticate path never takes it
                if not _try_compile(so_path):
                    _failed = True
                    return None
            # reprolint: disable-next=RL012 -- one-off dlopen under the build lock, same contract as the compile above
            lib = ctypes.CDLL(str(so_path))
            f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
            i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
            c_i64 = ctypes.c_int64
            lib.mr_transform.restype = ctypes.c_int
            lib.mr_transform.argtypes = [
                f64, c_i64, c_i64, c_i64,  # x, n, channels, length
                i64, i64, c_i64,           # dilations, nfeat, ndil
                f64, f64, c_i64,           # biases, out, total_features
            ]
            lib.mr_transform_strided.restype = ctypes.c_int
            lib.mr_transform_strided.argtypes = [
                f64, c_i64, c_i64, c_i64,  # x, n, channels, length
                i64, i64, c_i64,           # dilations, nfeat, ndil
                f64, c_i64,                # biases, bias_stride
                f64, c_i64,                # out, total_features
            ]
            _lib = lib
        # Intended silent fallback: any build/load failure demotes to the
        # pure-NumPy engine; minirocket._resolve_engine reports availability
        # so the demotion stays visible to callers that ask.
        # reprolint: disable-next=RL006 -- fallback to NumPy engine is the contract
        except Exception:
            _failed = True
            _lib = None
        return _lib


def available() -> bool:
    """True when the compiled kernel could be built and loaded."""
    return _load() is not None


class TransformPlan:
    """Pre-marshalled ``mr_transform`` arguments for repeated calls.

    The per-call cost of :func:`transform` includes re-validating and
    re-concatenating the dilation/bias arrays into the contiguous int64
    and float64 layouts the C entry point expects.  A plan pays that
    once; :func:`transform_prepared` then only has to hand pointers to
    ctypes.  Plans hold no state about the input batch, so one plan
    serves any ``(n, channels, length)`` matching the fitted extractor.
    """

    __slots__ = ("dilations", "features_per_dilation", "flat_biases",
                 "n_features_out", "n_dilations")

    def __init__(
        self,
        dilations: np.ndarray,
        features_per_dilation: np.ndarray,
        flat_biases: np.ndarray,
        n_features_out: int,
    ) -> None:
        self.dilations = dilations
        self.features_per_dilation = features_per_dilation
        self.flat_biases = flat_biases
        self.n_features_out = int(n_features_out)
        self.n_dilations = len(dilations)


def prepare(
    dilations: np.ndarray,
    features_per_dilation: np.ndarray,
    biases: List[List[np.ndarray]],
    n_features_out: int,
) -> Optional[TransformPlan]:
    """Build a :class:`TransformPlan`; ``None`` when the kernel is absent.

    Triggers the on-demand compile if it has not happened yet, so this
    doubles as the warmup entry point for the compiled engine.
    """
    if _load() is None:
        return None
    return TransformPlan(
        dilations=np.ascontiguousarray(dilations, dtype=np.int64),
        features_per_dilation=np.ascontiguousarray(
            features_per_dilation, dtype=np.int64
        ),
        flat_biases=np.ascontiguousarray(
            np.concatenate([b.ravel() for channel in biases for b in channel])
        ),
        n_features_out=n_features_out,
    )


def transform_prepared(
    plan: TransformPlan, x: np.ndarray, out: Optional[np.ndarray] = None
) -> Optional[np.ndarray]:
    """Run the compiled transform through a prepared plan.

    Args:
        plan: result of :func:`prepare`.
        x: C-contiguous float64 input, shape ``(n, channels, length)``.
        out: optional preallocated C-contiguous float64 output of shape
            ``(n, plan.n_features_out)``; allocated when omitted.

    Returns ``None`` if the kernel is unavailable or reports failure.
    """
    lib = _load()
    if lib is None:
        return None
    n, channels, length = x.shape
    if out is None:
        out = np.empty((n, plan.n_features_out))
    elif out.shape != (n, plan.n_features_out):
        raise ValueError(
            f"out has shape {out.shape}, expected {(n, plan.n_features_out)}"
        )
    status = lib.mr_transform(
        x, n, channels, length, plan.dilations, plan.features_per_dilation,
        plan.n_dilations, plan.flat_biases, out, plan.n_features_out,
    )
    if status != 0:
        return None
    return out


def transform_prepared_multi(
    plans: List[TransformPlan],
    x: np.ndarray,
    out: Optional[np.ndarray] = None,
) -> Optional[np.ndarray]:
    """One compiled call where each instance has its own bias plan.

    The cross-user batching primitive: ``x[i]`` is transformed against
    ``plans[i]`` — one enrolled extractor per probe — in a single
    kernel invocation. All plans must agree on the dilation schedule
    and feature counts (extractors fitted at the same shape and budget
    differ only in their bias tables); ``None`` is returned otherwise,
    or when the kernel is unavailable or declines the shape. Row ``i``
    of the output is bit-identical to
    ``transform_prepared(plans[i], x[i:i+1])`` because the kernel
    processes instances independently.

    Args:
        plans: one :func:`prepare` result per instance of ``x``.
        x: C-contiguous float64 input, shape ``(n, channels, length)``.
        out: optional preallocated ``(n, n_features_out)`` buffer.
    """
    lib = _load()
    if lib is None:
        return None
    n, channels, length = x.shape
    if len(plans) != n:
        raise ValueError(f"got {n} instances but {len(plans)} plans")
    head = plans[0]
    for plan in plans[1:]:
        if (
            plan.n_features_out != head.n_features_out
            or not np.array_equal(plan.dilations, head.dilations)
            or not np.array_equal(
                plan.features_per_dilation, head.features_per_dilation
            )
        ):
            return None
    stacked = np.ascontiguousarray(
        np.stack([plan.flat_biases for plan in plans])
    )
    if out is None:
        out = np.empty((n, head.n_features_out))
    elif out.shape != (n, head.n_features_out):
        raise ValueError(
            f"out has shape {out.shape}, expected {(n, head.n_features_out)}"
        )
    status = lib.mr_transform_strided(
        x, n, channels, length, head.dilations, head.features_per_dilation,
        head.n_dilations, stacked, stacked.shape[1], out, head.n_features_out,
    )
    if status != 0:
        return None
    return out


def transform(
    x: np.ndarray,
    dilations: np.ndarray,
    features_per_dilation: np.ndarray,
    biases: List[List[np.ndarray]],
    n_features_out: int,
) -> Optional[np.ndarray]:
    """Run the compiled transform; ``None`` if it cannot handle ``x``.

    Args:
        x: C-contiguous float64 input, shape ``(n, channels, length)``.
        dilations / features_per_dilation: the fitted dilation plan.
        biases: per-channel, per-dilation ``(84, nf)`` bias arrays.
        n_features_out: total output feature count.
    """
    plan = prepare(dilations, features_per_dilation, biases, n_features_out)
    if plan is None:
        return None
    return transform_prepared(plan, x)
