"""On-demand build and loading of the compiled MiniRocket kernel.

``minirocket_kernel.c`` is compiled into a shared library with the
system C compiler the first time it is needed and cached next to the
package (``_build/``, keyed by a source/flags digest, so edits
invalidate the cache).  Everything here is best-effort: any failure —
no compiler, read-only package directory, unsupported flags — simply
disables the fast path and :mod:`repro.features.minirocket` falls back
to the NumPy engine.  No build tooling is required at install time.

The compile flags matter for correctness, not just speed:
``-ffp-contract=off`` forbids fused multiply-adds and ``-ffast-math``
is never used, so the kernel's floating-point results are bit-identical
to the NumPy reference loop (asserted by the parity tests).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import threading
from pathlib import Path
from typing import List, Optional

import numpy as np

_SOURCE = Path(__file__).with_name("minirocket_kernel.c")
_BUILD_DIR = Path(__file__).with_name("_build")

#: Compilers and flag sets to try, most specific first.  -march=native
#: lets gcc vectorize the compare/count loops with whatever SIMD the
#: host has; the plain -O3 fallback still beats NumPy comfortably.
_COMPILERS = ("cc", "gcc", "clang")
_FLAG_SETS = (
    ["-O3", "-march=native", "-ffp-contract=off"],
    ["-O3", "-ffp-contract=off"],
)

_lock = threading.Lock()
_lib: Optional[ctypes.CDLL] = None
_failed = False


def _try_compile(so_path: Path) -> bool:
    source = str(_SOURCE)
    for compiler in _COMPILERS:
        for flags in _FLAG_SETS:
            tmp = so_path.with_name(so_path.name + f".tmp{os.getpid()}")
            cmd = [compiler, *flags, "-shared", "-fPIC", "-o", str(tmp), source]
            try:
                result = subprocess.run(
                    cmd,
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    timeout=120,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if result.returncode == 0 and tmp.exists():
                os.replace(tmp, so_path)
                return True
            tmp.unlink(missing_ok=True)
    return False


def _build_digest() -> str:
    payload = _SOURCE.read_bytes() + repr(_FLAG_SETS).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _load() -> Optional[ctypes.CDLL]:
    global _lib, _failed
    if _lib is not None or _failed:
        return _lib
    with _lock:
        if _lib is not None or _failed:
            return _lib
        try:
            so_path = _BUILD_DIR / f"minirocket_kernel-{_build_digest()}.so"
            if not so_path.exists():
                _BUILD_DIR.mkdir(exist_ok=True)
                if not _try_compile(so_path):
                    _failed = True
                    return None
            lib = ctypes.CDLL(str(so_path))
            lib.mr_transform.restype = ctypes.c_int
            f64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
            i64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
            c_i64 = ctypes.c_int64
            lib.mr_transform.argtypes = [
                f64, c_i64, c_i64, c_i64,  # x, n, channels, length
                i64, i64, c_i64,           # dilations, nfeat, ndil
                f64, f64, c_i64,           # biases, out, total_features
            ]
            _lib = lib
        # Intended silent fallback: any build/load failure demotes to the
        # pure-NumPy engine; minirocket._resolve_engine reports availability
        # so the demotion stays visible to callers that ask.
        # reprolint: disable-next=RL006 -- fallback to NumPy engine is the contract
        except Exception:
            _failed = True
            _lib = None
    return _lib


def available() -> bool:
    """True when the compiled kernel could be built and loaded."""
    return _load() is not None


def transform(
    x: np.ndarray,
    dilations: np.ndarray,
    features_per_dilation: np.ndarray,
    biases: List[List[np.ndarray]],
    n_features_out: int,
) -> Optional[np.ndarray]:
    """Run the compiled transform; ``None`` if it cannot handle ``x``.

    Args:
        x: C-contiguous float64 input, shape ``(n, channels, length)``.
        dilations / features_per_dilation: the fitted dilation plan.
        biases: per-channel, per-dilation ``(84, nf)`` bias arrays.
        n_features_out: total output feature count.
    """
    lib = _load()
    if lib is None:
        return None
    n, channels, length = x.shape
    dil = np.ascontiguousarray(dilations, dtype=np.int64)
    nfeat = np.ascontiguousarray(features_per_dilation, dtype=np.int64)
    flat_biases = np.ascontiguousarray(
        np.concatenate(
            [b.ravel() for channel in biases for b in channel]
        )
    )
    out = np.empty((n, n_features_out))
    status = lib.mr_transform(
        x, n, channels, length, dil, nfeat, len(dil), flat_biases, out,
        n_features_out,
    )
    if status != 0:
        return None
    return out
