"""Feature extraction: MiniRocket and the manual baseline.

`minirocket` implements the transform of Dempster, Schmidt & Webb
(KDD 2021) that the paper adopts (Eq. 5-6): 84 fixed convolution
kernels, exponential dilations, and proportion-of-positive-values
pooling. `manual` implements the hand-crafted statistical + DTW
template features used as the comparison baseline (Fig. 11, Table I),
and `dtw` the banded dynamic-time-warping distance they rely on.
"""

from .dtw import dtw_distance
from .manual import ManualFeatureExtractor, manual_feature_names
from .minirocket import (
    MiniRocket,
    c_kernel_available,
    transform_stacked,
    warm_engine,
)

__all__ = [
    "MiniRocket",
    "ManualFeatureExtractor",
    "manual_feature_names",
    "dtw_distance",
    "c_kernel_available",
    "transform_stacked",
    "warm_engine",
]
