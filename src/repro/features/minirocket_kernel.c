/* Compiled MiniRocket transform kernel.
 *
 * One pass per (instance, channel, dilation): build the nine dilated,
 * zero-padded shifts of the series in L1 cache, form each kernel's
 * convolution from the shared c_alpha row, and pool the PPV counts
 * while the convolution row is still cache-hot.  No large
 * intermediates ever touch main memory, which is what makes this path
 * several times faster than the NumPy engine.
 *
 * Two structural optimizations on top of that, both value-preserving:
 *
 *   - The 84 kernels are enumerated as nested (a < b < c) loops so the
 *     shared pair sum (s_a + s_b) is computed once per (a, b) pair —
 *     36 row additions instead of 84 — with the association
 *     (s_a + s_b) + s_c unchanged.
 *   - Dilations with a single bias per kernel (the common case at the
 *     paper's feature budget) fuse the convolution and the PPV count
 *     into one pass, never materializing the conv row.
 *
 * Floating-point arithmetic deliberately mirrors the NumPy reference
 * loop operation for operation:
 *
 *   c_alpha = -(((s0 + s1) + s2) + ... + s8)     (sequential)
 *   conv    = c_alpha + 3.0 * ((sa + sb) + sc)
 *   feature = count(conv > bias) / pool_length   (double division)
 *
 * Build with -ffp-contract=off and WITHOUT -ffast-math (see
 * _ckernel.py); under those flags the output is bit-identical to the
 * reference implementation, and the parity tests assert exactly that.
 */

#include <stdint.h>
#include <string.h>

#define KLEN 9
#define NK 84
#define MAX_LEN 4096

/* Returns 0 on success, 1 when the series is too long for the
 * stack-allocated work buffers (the caller falls back to NumPy).
 *
 * bias_stride selects between one shared bias table (0, the classic
 * single-extractor call) and one table per instance (the element
 * count between consecutive instances' tables) — which is how a batch
 * of probes against *different users'* extractors runs as one call:
 * instance i reads only its own table, exactly as a single-instance
 * call with that table would, so the rows are bit-identical either
 * way. */
int mr_transform_strided(
    const double *x,          /* (n, channels, length), C-order */
    int64_t n, int64_t channels, int64_t length,
    const int64_t *dilations, /* (ndil,) */
    const int64_t *nfeat,     /* (ndil,) features per kernel per dilation */
    int64_t ndil,
    const double *biases,     /* concat over (ch, dil) of (84, nf) rows */
    int64_t bias_stride,      /* elements between instances' tables; 0 = shared */
    double *out,              /* (n, total_features), C-order */
    int64_t total_features)
{
    double s[KLEN][MAX_LEN];
    double c_alpha[MAX_LEN];
    double pair[MAX_LEN];
    double conv[MAX_LEN];
    const int64_t L = length;

    if (L > MAX_LEN)
        return 1;

    int64_t per_channel_biases = 0;
    for (int64_t di = 0; di < ndil; ++di)
        per_channel_biases += NK * nfeat[di];

    for (int64_t inst = 0; inst < n; ++inst) {
        double *orow = out + inst * total_features;
        int64_t col = 0;
        for (int64_t ch = 0; ch < channels; ++ch) {
            const double *xr = x + (inst * channels + ch) * L;
            const double *bp = biases + inst * bias_stride
                + ch * per_channel_biases;

            for (int64_t di = 0; di < ndil; ++di) {
                const int64_t d = dilations[di];
                const int64_t nf = nfeat[di];
                const int64_t pad = (KLEN / 2) * d;

                /* nine shifted, zero-padded copies of the series */
                for (int j = 0; j < KLEN; ++j) {
                    const int64_t off = (j - KLEN / 2) * d;
                    if (off == 0) {
                        memcpy(s[j], xr, (size_t)L * sizeof(double));
                    } else if (off > 0) {
                        const int64_t m = L - off > 0 ? L - off : 0;
                        for (int64_t i = 0; i < m; ++i)
                            s[j][i] = xr[i + off];
                        for (int64_t i = m; i < L; ++i)
                            s[j][i] = 0.0;
                    } else {
                        const int64_t m = L + off > 0 ? L + off : 0;
                        for (int64_t i = 0; i < -off && i < L; ++i)
                            s[j][i] = 0.0;
                        for (int64_t i = 0; i < m; ++i)
                            s[j][i - off] = xr[i];
                    }
                }
                for (int64_t i = 0; i < L; ++i) {
                    double acc = s[0][i];
                    for (int j = 1; j < KLEN; ++j)
                        acc += s[j][i];
                    c_alpha[i] = -acc;
                }
                const int64_t vlo = (L > 2 * pad) ? pad : 0;
                const int64_t vhi = (L > 2 * pad) ? L - pad : L;
                const double div_full = (double)L;
                const double div_valid = (double)(vhi - vlo);

                /* Triples in the same lexicographic (a < b < c) order
                 * the kernel table used; k is the running kernel
                 * index.  The shared (s_a + s_b) sum is hoisted out of
                 * the c loop — association (s_a + s_b) + s_c is
                 * unchanged, so conv values are bit-identical. */
                int k = 0;
                for (int a = 0; a < KLEN; ++a) {
                    for (int b = a + 1; b < KLEN; ++b) {
                        const double *sa = s[a];
                        const double *sb = s[b];
                        for (int64_t i = 0; i < L; ++i)
                            pair[i] = sa[i] + sb[i];
                        for (int c = b + 1; c < KLEN; ++c, ++k) {
                            const double *sc = s[c];
                            const double *bk = bp + (int64_t)k * nf;
                            if (nf == 1) {
                                /* One bias per kernel: fuse conv and
                                 * count in a single pass, no conv row
                                 * store.  Integer counts are
                                 * order-free, so this is exact. */
                                const double bv = bk[0];
                                int64_t cnt = 0;
                                if ((k & 1) == 0) { /* padded: full */
                                    for (int64_t i = 0; i < L; ++i)
                                        cnt += c_alpha[i]
                                            + 3.0 * (pair[i] + sc[i]) > bv;
                                    orow[col + k] = (double)cnt / div_full;
                                } else {            /* valid region */
                                    for (int64_t i = vlo; i < vhi; ++i)
                                        cnt += c_alpha[i]
                                            + 3.0 * (pair[i] + sc[i]) > bv;
                                    orow[col + k] = (double)cnt / div_valid;
                                }
                                continue;
                            }
                            for (int64_t i = 0; i < L; ++i)
                                conv[i] = c_alpha[i]
                                    + 3.0 * (pair[i] + sc[i]);
                            for (int64_t f = 0; f < nf; ++f) {
                                const double bv = bk[f];
                                int64_t cnt = 0;
                                if (((k + f) & 1) == 0) { /* full */
                                    for (int64_t i = 0; i < L; ++i)
                                        cnt += conv[i] > bv;
                                    orow[col + (int64_t)k * nf + f] =
                                        (double)cnt / div_full;
                                } else {                  /* valid */
                                    for (int64_t i = vlo; i < vhi; ++i)
                                        cnt += conv[i] > bv;
                                    orow[col + (int64_t)k * nf + f] =
                                        (double)cnt / div_valid;
                                }
                            }
                        }
                    }
                }
                col += NK * nf;
                bp += NK * nf;
            }
        }
    }
    return 0;
}

/* The classic entry point: every instance shares one bias table. */
int mr_transform(
    const double *x,
    int64_t n, int64_t channels, int64_t length,
    const int64_t *dilations,
    const int64_t *nfeat,
    int64_t ndil,
    const double *biases,
    double *out,
    int64_t total_features)
{
    return mr_transform_strided(x, n, channels, length, dilations, nfeat,
                                ndil, biases, 0, out, total_features);
}
