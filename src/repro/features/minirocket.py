"""MiniRocket time-series transform, implemented from scratch.

MiniRocket (Dempster, Schmidt & Webb, KDD 2021) transforms a time
series with a fixed set of 84 convolution kernels of length 9 whose
weights take only two values: three positions carry weight +2 and six
carry weight -1 (every kernel sums to zero, giving offset invariance).
Kernels are applied at exponentially spaced dilations (Eq. 5 of the
P2Auth paper), and each (kernel, dilation, bias) combination is pooled
to a single feature — the proportion of positive values

.. math::

    PPV(Z) = \\frac{1}{N} \\sum_i \\mathbb{1}[z_i > b]

(Eq. 6). Biases are drawn from quantiles of the convolution output on
training examples, which is the only data-dependent part of the fit.

The convolution is computed with the restricted-weight trick from the
original paper: with :math:`A = -X` and :math:`G = 3X`,

.. math::

    C = \\sum_{j=0}^{8} A^{(j)} + \\sum_{j \\in K} G^{(j)}

where :math:`X^{(j)}` denotes ``X`` shifted by ``(j - 4) * dilation``
and ``K`` the kernel's three +2 positions — so the 84 kernels share one
set of nine shifted copies per dilation.

Multivariate series are handled channel-independently: the feature
budget is split evenly across channels and the per-channel feature
blocks are concatenated, which keeps channel-count comparisons
(Fig. 13 of the P2Auth paper) fair at a fixed total feature length.

Engines
-------

``transform`` dispatches between three interchangeable engines that
produce bit-identical features (see ``docs/performance.md``):

- ``"c"`` — a small compiled kernel (built on demand with the system C
  compiler) that fuses convolution, thresholding, and pooling in cache;
  the fastest path and the default where a compiler is available.
- ``"vectorized"`` — batched linear algebra in NumPy: all 84 kernel
  convolutions of a dilation come from one matrix product of the
  module-level :data:`KERNEL_WEIGHTS` with the shifted stack, and the
  PPV pooling is broadcast across the whole (kernel, feature) grid.
  Instance batching (``batch_size``) bounds peak memory.
- ``"reference"`` — the original per-kernel Python loop, kept verbatim
  as :meth:`MiniRocket._transform_reference` for parity testing.

The engine is chosen per instance (``engine=`` constructor argument) or
globally via the ``REPRO_MINIROCKET_ENGINE`` environment variable
(``auto``, ``c``, ``vectorized``, or ``reference``).
"""

from __future__ import annotations

import os
from itertools import combinations
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError, SignalError
from . import _ckernel

#: Kernel length fixed by the MiniRocket design.
KERNEL_LENGTH = 9

#: The 84 kernels: all ways to place the three +2 weights.
KERNEL_INDICES: Tuple[Tuple[int, int, int], ...] = tuple(
    combinations(range(KERNEL_LENGTH), 3)
)

NUM_KERNELS = len(KERNEL_INDICES)


def _kernel_weight_matrix() -> np.ndarray:
    weights = np.full((NUM_KERNELS, KERNEL_LENGTH), -1.0)
    for k, idx in enumerate(KERNEL_INDICES):
        weights[k, list(idx)] = 2.0
    return weights


#: The (84, 9) weight matrix: row ``k`` holds kernel ``k`` (+2 at its
#: three chosen taps, -1 elsewhere). One matrix product of this with
#: the nine shifted copies yields every kernel convolution at once.
KERNEL_WEIGHTS = _kernel_weight_matrix()
KERNEL_WEIGHTS.setflags(write=False)

#: The three +2 tap positions of each kernel as index vectors, used to
#: gather the shifted stack with the same addition order as the
#: reference loop (``(s_a + s_b) + s_c``).
_TAP_A = np.array([idx[0] for idx in KERNEL_INDICES])  # concurrency: immutable-after-init
_TAP_B = np.array([idx[1] for idx in KERNEL_INDICES])  # concurrency: immutable-after-init
_TAP_C = np.array([idx[2] for idx in KERNEL_INDICES])  # concurrency: immutable-after-init
# Enforce the immutability declared above: these index vectors are read
# concurrently by every featurization thread.
for _tap in (_TAP_A, _TAP_B, _TAP_C):
    _tap.setflags(write=False)
del _tap

#: Engine names accepted by ``MiniRocket(engine=...)`` and the
#: ``REPRO_MINIROCKET_ENGINE`` environment variable.
ENGINES = ("auto", "c", "vectorized", "reference")


def _golden_quantiles(n: int) -> np.ndarray:
    """Low-discrepancy quantile sequence ((phi * k) mod 1, k = 1..n)."""
    phi = (np.sqrt(5.0) + 1.0) / 2.0
    return np.mod(phi * np.arange(1, n + 1), 1.0)


def _fit_dilations(
    input_length: int, num_features: int, max_dilations_per_kernel: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Choose dilations and the feature count per dilation.

    Follows the reference implementation: dilations are the unique
    integer parts of an exponentially spaced grid whose maximum keeps
    the dilated kernel inside the input, and the per-kernel feature
    budget is spread across them proportionally.
    """
    num_features_per_kernel = max(1, num_features // NUM_KERNELS)
    true_max = min(num_features_per_kernel, max_dilations_per_kernel)
    multiplier = num_features_per_kernel / true_max

    max_exponent = np.log2((input_length - 1) / (KERNEL_LENGTH - 1))
    max_exponent = max(max_exponent, 0.0)
    raw = np.logspace(0, max_exponent, true_max, base=2.0).astype(np.int64)
    dilations, counts = np.unique(raw, return_counts=True)
    features_per_dilation = (counts * multiplier).astype(np.int64)

    remainder = num_features_per_kernel - int(features_per_dilation.sum())
    i = 0
    while remainder > 0:
        features_per_dilation[i % len(features_per_dilation)] += 1
        remainder -= 1
        i += 1
    return dilations, features_per_dilation


def _shifted_stack(x: np.ndarray, dilation: int) -> np.ndarray:
    """Return the nine dilated shifts of ``x``, zero-padded.

    Args:
        x: array of shape ``(n_instances, length)``.
        dilation: kernel dilation ``d``.

    Returns:
        Array ``S`` of shape ``(9, n_instances, length)`` where
        ``S[j, :, i] = x[:, i + (j - 4) * d]`` (zero outside).
    """
    n, length = x.shape
    stack = np.zeros((KERNEL_LENGTH, n, length), dtype=np.float64)
    center = KERNEL_LENGTH // 2
    for j in range(KERNEL_LENGTH):
        offset = (j - center) * dilation
        if offset == 0:
            stack[j] = x
        elif offset > 0:
            if offset < length:
                stack[j, :, : length - offset] = x[:, offset:]
        else:
            if -offset < length:
                stack[j, :, -offset:] = x[:, : length + offset]
    return stack


def _resolve_engine(name: Optional[str]) -> str:
    """Map a requested engine name to a concrete engine.

    ``None`` defers to the ``REPRO_MINIROCKET_ENGINE`` environment
    variable; ``auto`` (the default) picks the compiled kernel when it
    is available and the NumPy engine otherwise.
    """
    if name is None:
        name = os.environ.get("REPRO_MINIROCKET_ENGINE", "auto").lower() or "auto"
    if name not in ENGINES:
        raise ConfigurationError(
            f"engine must be one of {ENGINES}, got {name!r}"
        )
    if name == "auto":
        return "c" if _ckernel.available() else "vectorized"
    if name == "c" and not _ckernel.available():
        raise ConfigurationError(
            "the compiled MiniRocket kernel is unavailable "
            "(no working C compiler); use engine='vectorized'"
        )
    return name


def c_kernel_available() -> bool:
    """True when the compiled MiniRocket kernel can be built and loaded.

    The public probe for scripts and benchmarks; triggers the on-demand
    compile on first call, so a ``True`` answer means the kernel is
    already loaded.
    """
    return _ckernel.available()


def warm_engine(engine: Optional[str] = None) -> str:
    """Resolve the feature engine, paying the one-off compile cost now.

    Resolving ``"auto"`` (or an explicit ``"c"``) probes kernel
    availability, which builds and loads the shared library on first
    call — the dominant first-request cost (~hundreds of ms) when it
    happens inside ``authenticate``. Call this at process start, from
    ``P2Auth.__init__``, or via ``warmup()`` to move it off the request
    path.

    Unlike :func:`_resolve_engine` this never raises for a missing
    compiler: an unavailable compiled kernel demotes to
    ``"vectorized"``, matching what ``transform`` would actually run.

    Returns:
        The concrete engine name that will serve transforms.
    """
    try:
        return _resolve_engine(engine)
    except ConfigurationError:
        if engine in (None, "auto", "c"):
            return "vectorized"
        raise


def transform_stacked(
    rockets: List["MiniRocket"], x: np.ndarray
) -> Optional[np.ndarray]:
    """Transform one instance per fitted extractor in a single C call.

    The cross-user hot path: ``x[i]`` is transformed by ``rockets[i]``
    (typically one enrolled user's extractor each), with all instances
    batched into one compiled-kernel invocation carrying per-instance
    bias tables. Row ``i`` is bit-identical to
    ``rockets[i].transform(x[i:i + 1])`` — the kernel processes
    instances independently — which is what lets a registry batch
    probes across users without perturbing any decision.

    Returns ``None`` whenever stacking does not apply — extractors not
    all fitted at the same shape/schedule, an engine not resolving to
    the compiled kernel, or the kernel declining — and the caller
    falls back to the per-extractor loop it replaces.

    Args:
        rockets: fitted extractors, one per instance of ``x``.
        x: input of shape ``(n, channels, length)``.
    """
    x = np.asarray(x)
    if x.dtype != np.float64 or not x.flags.c_contiguous:
        x = np.ascontiguousarray(x, dtype=np.float64)
    if x.ndim != 3 or x.shape[0] == 0 or len(rockets) != x.shape[0]:
        return None
    plans: List[_ckernel.TransformPlan] = []
    for rocket in rockets:
        if not rocket._fitted:
            return None
        if (rocket._n_channels, rocket._input_length) != x.shape[1:]:
            return None
        try:
            engine = _resolve_engine(rocket.engine)
        except ConfigurationError:
            return None
        if engine != "c":
            return None
        plan = rocket._c_plan()
        if plan is None:
            return None
        plans.append(plan)
    return _ckernel.transform_prepared_multi(plans, x)


class MiniRocket:
    """The MiniRocket transform.

    Args:
        num_features: total output feature count (paper: ~10K). For
            multivariate input the budget is split evenly across
            channels; the realized count is rounded down to a multiple
            of 84 per channel and never below 84.
        max_dilations_per_kernel: cap on distinct dilations per kernel.
        seed: seed for the training-example choice used to set biases.
        batch_size: instances transformed per NumPy-engine batch; caps
            the size of the intermediate convolution/comparison buffers
            so peak memory stays bounded on large inputs.
        engine: feature engine ("auto", "c", "vectorized",
            "reference"); ``None`` defers to ``REPRO_MINIROCKET_ENGINE``
            and then to "auto".

    Usage::

        rocket = MiniRocket(num_features=9996)
        rocket.fit(x_train)             # (n, length) or (n, ch, length)
        features = rocket.transform(x)  # (n, realized_num_features)
    """

    def __init__(
        self,
        num_features: int = 9996,
        max_dilations_per_kernel: int = 32,
        seed: int = 0,
        batch_size: int = 256,
        engine: Optional[str] = None,
    ) -> None:
        if num_features < NUM_KERNELS:
            raise ConfigurationError(
                f"num_features must be >= {NUM_KERNELS}, got {num_features}"
            )
        if max_dilations_per_kernel < 1:
            raise ConfigurationError("max_dilations_per_kernel must be >= 1")
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        if engine is not None and engine not in ENGINES:
            raise ConfigurationError(
                f"engine must be one of {ENGINES}, got {engine!r}"
            )
        self.num_features = num_features
        self.max_dilations_per_kernel = max_dilations_per_kernel
        self.seed = seed
        self.batch_size = batch_size
        self.engine = engine
        self._fitted = False
        self._n_channels: Optional[int] = None
        self._input_length: Optional[int] = None
        self._dilations: Optional[np.ndarray] = None
        self._features_per_dilation: Optional[np.ndarray] = None
        # biases[channel] -> list over dilations of (84, features) arrays
        self._biases: Optional[List[List[np.ndarray]]] = None
        # Pre-marshalled compiled-kernel arguments; built lazily on the
        # first C-engine transform and invalidated by fit().
        self._plan: Optional[_ckernel.TransformPlan] = None

    @staticmethod
    def _as_3d(x: np.ndarray) -> np.ndarray:
        """Normalize input to C-contiguous ``(n, n_channels, length)``.

        Conforming input — already float64 and C-contiguous — is passed
        through as a view without copying.
        """
        x = np.asarray(x)
        if x.dtype != np.float64 or not x.flags.c_contiguous:
            x = np.ascontiguousarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        if x.ndim != 3:
            raise SignalError(
                f"expected (n, length) or (n, channels, length), got {x.shape}"
            )
        if x.shape[0] == 0:
            raise SignalError("no instances to transform")
        if x.shape[2] < KERNEL_LENGTH:
            raise SignalError(
                f"series length {x.shape[2]} shorter than kernel "
                f"length {KERNEL_LENGTH}"
            )
        return x

    @property
    def n_features_out(self) -> int:
        """Realized output feature count (available after :meth:`fit`)."""
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        per_channel = NUM_KERNELS * int(np.sum(self._features_per_dilation))
        return per_channel * int(self._n_channels)

    @property
    def valid_pooling_mask(self) -> np.ndarray:
        """Boolean mask over output columns: True where PPV pools only
        the valid (unpadded) convolution region.

        Valid-pooled features are exactly offset-invariant (the
        zero-sum kernels cancel constants); padded-pooled features see
        the zero padding and are not.
        """
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        mask: List[bool] = []
        for _ch in range(int(self._n_channels)):
            for n_feat in self._features_per_dilation:
                for k in range(NUM_KERNELS):
                    mask.extend((k + f) % 2 == 1 for f in range(int(n_feat)))
        return np.asarray(mask, dtype=bool)

    def fit(self, x: np.ndarray) -> "MiniRocket":
        """Fix dilations and biases from training data.

        All 84 kernel convolutions of the training example are gathered
        at once and their bias quantiles come from a single batched
        ``np.quantile`` call per (channel, dilation) — no per-kernel
        Python loop — with the same floating-point operation order as
        the original per-kernel loop, so the fitted biases are
        bit-identical to it.

        Args:
            x: training series, shape ``(n, length)`` or
                ``(n, channels, length)``.
        """
        x = self._as_3d(x)
        n, channels, length = x.shape
        per_channel_budget = max(NUM_KERNELS, self.num_features // channels)
        self._dilations, self._features_per_dilation = _fit_dilations(
            length, per_channel_budget, self.max_dilations_per_kernel
        )
        rng = np.random.default_rng(self.seed)

        biases: List[List[np.ndarray]] = []
        for ch in range(channels):
            channel_biases: List[np.ndarray] = []
            for dilation, n_feat in zip(
                self._dilations, self._features_per_dilation
            ):
                n_feat = int(n_feat)
                quantiles = _golden_quantiles(n_feat * NUM_KERNELS).reshape(
                    NUM_KERNELS, n_feat
                )
                # One random training example per (dilation, channel)
                # supplies the convolution-output quantiles.
                example = x[rng.integers(0, n), ch][np.newaxis, :]
                stack = _shifted_stack(example, int(dilation))
                c_alpha = -stack.sum(axis=0)
                conv = c_alpha + 3.0 * (
                    (stack[_TAP_A] + stack[_TAP_B]) + stack[_TAP_C]
                )
                conv = conv.reshape(NUM_KERNELS, length)
                # One np.quantile call evaluates every requested
                # quantile on every kernel row; keep each kernel's own
                # quantiles (the "diagonal" of that grid).
                grid = np.quantile(conv, quantiles.ravel(), axis=1)
                rows = np.arange(NUM_KERNELS * n_feat)
                kernel_biases = grid[
                    rows, np.repeat(np.arange(NUM_KERNELS), n_feat)
                ].reshape(NUM_KERNELS, n_feat)
                channel_biases.append(kernel_biases)
            biases.append(channel_biases)

        self._biases = biases
        self._n_channels = channels
        self._input_length = length
        self._plan = None
        self._fitted = True
        return self

    def _check_transform_input(self, x: np.ndarray) -> np.ndarray:
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        x = self._as_3d(x)
        n, channels, length = x.shape
        if channels != self._n_channels:
            raise SignalError(
                f"fitted on {self._n_channels} channels, got {channels}"
            )
        if length != self._input_length:
            raise SignalError(
                f"fitted on length {self._input_length}, got {length}"
            )
        return x

    def _c_plan(self) -> Optional[_ckernel.TransformPlan]:
        """The cached compiled-kernel plan; ``None`` when unavailable."""
        if self._plan is None:
            self._plan = _ckernel.prepare(
                self._dilations,
                self._features_per_dilation,
                self._biases,
                self.n_features_out,
            )
        return self._plan

    def get_state(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """The fitted state as a ``(header, arrays)`` pair.

        The header holds the construction scalars, the arrays the fitted
        dilation schedule and bias tables — together everything
        :meth:`from_state` needs to rebuild an extractor whose
        transforms are bit-identical to this one's. The serialization
        container (``.npz`` archive, packed arena record, ...) is the
        caller's business; the array names are stable keys
        (``dilations``, ``features_per_dilation``,
        ``biases/<channel>/<dilation>``).
        """
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        assert self._biases is not None
        header: Dict[str, Any] = {
            "num_features": self.num_features,
            "max_dilations_per_kernel": self.max_dilations_per_kernel,
            "seed": self.seed,
            "n_channels": int(self._n_channels or 0),
            "input_length": int(self._input_length or 0),
            "n_bias_dilations": len(self._biases[0]),
        }
        arrays: Dict[str, np.ndarray] = {
            "dilations": np.asarray(self._dilations),
            "features_per_dilation": np.asarray(self._features_per_dilation),
        }
        for ch, channel_biases in enumerate(self._biases):
            for d, biases in enumerate(channel_biases):
                arrays[f"biases/{ch}/{d}"] = biases
        return header, arrays

    @classmethod
    def from_state(
        cls, header: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> "MiniRocket":
        """Rebuild a fitted extractor from :meth:`get_state` output.

        The arrays may be read-only views into a larger buffer (e.g. a
        memory-mapped arena): the transform only ever reads them, so no
        copy is made.
        """
        rocket = cls(
            num_features=int(header["num_features"]),
            max_dilations_per_kernel=int(header["max_dilations_per_kernel"]),
            seed=int(header["seed"]),
        )
        rocket._dilations = np.asarray(arrays["dilations"])
        rocket._features_per_dilation = np.asarray(
            arrays["features_per_dilation"]
        )
        n_channels = int(header["n_channels"])
        n_dil = int(header["n_bias_dilations"])
        rocket._biases = [
            [np.asarray(arrays[f"biases/{ch}/{d}"]) for d in range(n_dil)]
            for ch in range(n_channels)
        ]
        rocket._n_channels = n_channels
        rocket._input_length = int(header["input_length"])
        rocket._fitted = True
        return rocket

    def warm(self) -> "MiniRocket":
        """Pay the one-off transform costs ahead of the first real call.

        Resolves the engine (building and loading the C kernel if
        needed), marshals the prepared argument plan, and runs one
        throwaway transform at the fitted shape so every lazy path the
        first real call would hit is already primed. Results are
        unaffected — warming is observable only as latency. Idempotent
        and cheap after the first call (one small transform).
        """
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        x = np.zeros((1, int(self._n_channels), int(self._input_length)))
        self.transform(x)
        return self

    def transform(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Transform series into PPV features.

        Args:
            x: series with the same channel count and length as the
                training data.
            out: optional preallocated C-contiguous float64 buffer of
                shape ``(n, n_features_out)`` to write features into
                (the hot authentication path reuses one across calls).
                The returned array is ``out`` when it was used.

        Returns:
            Feature matrix of shape ``(n, n_features_out)``.
        """
        x = self._check_transform_input(x)
        engine = _resolve_engine(self.engine)
        if engine == "reference":
            features = self._transform_loop(x)
            if out is not None:
                np.copyto(out, features)
                return out
            return features
        if engine == "c":
            plan = self._c_plan()
            if plan is not None:
                features = _ckernel.transform_prepared(plan, x, out=out)
                if features is not None:
                    return features
            # Compiled path declined the shape; fall through to NumPy.
        return self._transform_vectorized(x, out=out)

    def _transform_vectorized(
        self, x: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Batched-linear-algebra engine.

        Per (channel, instance batch, dilation): one matrix product
        ``KERNEL_WEIGHTS @ stack`` yields all 84 convolutions, then the
        PPV counts for the whole (kernel, feature) grid come from four
        broadcast comparisons — kernels split by parity, features split
        into the padded (full-length) and valid (unpadded) pooling
        groups, exactly the regions the reference loop pools.
        """
        n, channels, length = x.shape
        n_feature_cols = self.n_features_out
        per_channel = n_feature_cols // channels
        if out is None:
            out = np.empty((n, n_feature_cols))
        elif out.shape != (n, n_feature_cols):
            raise SignalError(
                f"out has shape {out.shape}, expected {(n, n_feature_cols)}"
            )
        batch = self.batch_size

        for ch in range(channels):
            xc = x[:, ch, :]
            for start in range(0, n, batch):
                xb = xc[start : start + batch]
                b = xb.shape[0]
                col = ch * per_channel
                for d_index, (dilation, n_feat) in enumerate(
                    zip(self._dilations, self._features_per_dilation)
                ):
                    dilation = int(dilation)
                    n_feat = int(n_feat)
                    stack = _shifted_stack(xb, dilation)
                    conv = np.matmul(
                        KERNEL_WEIGHTS, stack.reshape(KERNEL_LENGTH, -1)
                    ).reshape(NUM_KERNELS, b, length)
                    biases = self._biases[ch][d_index]
                    pad = (KERNEL_LENGTH // 2) * dilation
                    if length > 2 * pad:
                        vlo, vhi = pad, length - pad
                    else:
                        vlo, vhi = 0, length
                    feats = np.empty((NUM_KERNELS, n_feat, b))
                    # (k + f) even -> pool the full (padded) length;
                    # (k + f) odd -> pool only the valid region.
                    for p in (0, 1):
                        conv_p = conv[p::2]
                        bias_p = biases[p::2]
                        f_pad = slice(p, None, 2)
                        f_val = slice(1 - p, None, 2)
                        bp = bias_p[:, f_pad]
                        if bp.size:
                            hits = np.count_nonzero(
                                conv_p[:, None, :, :] > bp[:, :, None, None],
                                axis=-1,
                            )
                            feats[p::2, f_pad] = hits / float(length)
                        bv = bias_p[:, f_val]
                        if bv.size:
                            hits = np.count_nonzero(
                                conv_p[:, None, :, vlo:vhi]
                                > bv[:, :, None, None],
                                axis=-1,
                            )
                            feats[p::2, f_val] = hits / float(vhi - vlo)
                    out[start : start + b, col : col + NUM_KERNELS * n_feat] = (
                        feats.reshape(NUM_KERNELS * n_feat, b).T
                    )
                    col += NUM_KERNELS * n_feat
        return out

    def _transform_loop(self, x: np.ndarray) -> np.ndarray:
        """The original per-kernel loop, kept verbatim for parity."""
        n, channels, length = x.shape
        blocks: List[np.ndarray] = []
        center = KERNEL_LENGTH // 2
        for ch in range(channels):
            xc = x[:, ch, :]
            for d_index, (dilation, n_feat) in enumerate(
                zip(self._dilations, self._features_per_dilation)
            ):
                dilation = int(dilation)
                n_feat = int(n_feat)
                stack = _shifted_stack(xc, dilation)
                c_alpha = -stack.sum(axis=0)
                pad = center * dilation
                valid = slice(pad, length - pad) if length > 2 * pad else slice(0, length)
                biases = self._biases[ch][d_index]
                for k, idx in enumerate(KERNEL_INDICES):
                    conv = c_alpha + 3.0 * (
                        stack[idx[0]] + stack[idx[1]] + stack[idx[2]]
                    )
                    # Alternate padded/valid pooling regions across the
                    # (kernel, feature) grid, as in the reference
                    # implementation; both groups are one broadcast each.
                    feats = np.empty((n_feat, n))
                    padded_slice = slice(k % 2, None, 2)
                    valid_slice = slice((k + 1) % 2, None, 2)
                    padded_b = biases[k, padded_slice]
                    valid_b = biases[k, valid_slice]
                    if padded_b.size:
                        feats[padded_slice] = np.mean(
                            conv[np.newaxis]
                            > padded_b[:, np.newaxis, np.newaxis],
                            axis=2,
                        )
                    if valid_b.size:
                        feats[valid_slice] = np.mean(
                            conv[np.newaxis, :, valid]
                            > valid_b[:, np.newaxis, np.newaxis],
                            axis=2,
                        )
                    blocks.extend(feats)
        return np.column_stack(blocks)

    def _transform_reference(self, x: np.ndarray) -> np.ndarray:
        """Transform with the original per-kernel Python loop.

        The loop is the pre-vectorization implementation, preserved
        unchanged; the vectorized and compiled engines are tested for
        bit-identical output against it.
        """
        x = self._check_transform_input(x)
        return self._transform_loop(x)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its transform."""
        return self.fit(x).transform(x)
