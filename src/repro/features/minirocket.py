"""MiniRocket time-series transform, implemented from scratch.

MiniRocket (Dempster, Schmidt & Webb, KDD 2021) transforms a time
series with a fixed set of 84 convolution kernels of length 9 whose
weights take only two values: three positions carry weight +2 and six
carry weight -1 (every kernel sums to zero, giving offset invariance).
Kernels are applied at exponentially spaced dilations (Eq. 5 of the
P2Auth paper), and each (kernel, dilation, bias) combination is pooled
to a single feature — the proportion of positive values

.. math::

    PPV(Z) = \\frac{1}{N} \\sum_i \\mathbb{1}[z_i > b]

(Eq. 6). Biases are drawn from quantiles of the convolution output on
training examples, which is the only data-dependent part of the fit.

The convolution is computed with the restricted-weight trick from the
original paper: with :math:`A = -X` and :math:`G = 3X`,

.. math::

    C = \\sum_{j=0}^{8} A^{(j)} + \\sum_{j \\in K} G^{(j)}

where :math:`X^{(j)}` denotes ``X`` shifted by ``(j - 4) * dilation``
and ``K`` the kernel's three +2 positions — so the 84 kernels share one
set of nine shifted copies per dilation.

Multivariate series are handled channel-independently: the feature
budget is split evenly across channels and the per-channel feature
blocks are concatenated, which keeps channel-count comparisons
(Fig. 13 of the P2Auth paper) fair at a fixed total feature length.
"""

from __future__ import annotations

from itertools import combinations
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError, NotFittedError, SignalError

#: Kernel length fixed by the MiniRocket design.
KERNEL_LENGTH = 9

#: The 84 kernels: all ways to place the three +2 weights.
KERNEL_INDICES: Tuple[Tuple[int, int, int], ...] = tuple(
    combinations(range(KERNEL_LENGTH), 3)
)

NUM_KERNELS = len(KERNEL_INDICES)


def _golden_quantiles(n: int) -> np.ndarray:
    """Low-discrepancy quantile sequence ((phi * k) mod 1, k = 1..n)."""
    phi = (np.sqrt(5.0) + 1.0) / 2.0
    return np.mod(phi * np.arange(1, n + 1), 1.0)


def _fit_dilations(
    input_length: int, num_features: int, max_dilations_per_kernel: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Choose dilations and the feature count per dilation.

    Follows the reference implementation: dilations are the unique
    integer parts of an exponentially spaced grid whose maximum keeps
    the dilated kernel inside the input, and the per-kernel feature
    budget is spread across them proportionally.
    """
    num_features_per_kernel = max(1, num_features // NUM_KERNELS)
    true_max = min(num_features_per_kernel, max_dilations_per_kernel)
    multiplier = num_features_per_kernel / true_max

    max_exponent = np.log2((input_length - 1) / (KERNEL_LENGTH - 1))
    max_exponent = max(max_exponent, 0.0)
    raw = np.logspace(0, max_exponent, true_max, base=2.0).astype(np.int64)
    dilations, counts = np.unique(raw, return_counts=True)
    features_per_dilation = (counts * multiplier).astype(np.int64)

    remainder = num_features_per_kernel - int(features_per_dilation.sum())
    i = 0
    while remainder > 0:
        features_per_dilation[i % len(features_per_dilation)] += 1
        remainder -= 1
        i += 1
    return dilations, features_per_dilation


def _shifted_stack(x: np.ndarray, dilation: int) -> np.ndarray:
    """Return the nine dilated shifts of ``x``, zero-padded.

    Args:
        x: array of shape ``(n_instances, length)``.
        dilation: kernel dilation ``d``.

    Returns:
        Array ``S`` of shape ``(9, n_instances, length)`` where
        ``S[j, :, i] = x[:, i + (j - 4) * d]`` (zero outside).
    """
    n, length = x.shape
    stack = np.zeros((KERNEL_LENGTH, n, length), dtype=np.float64)
    center = KERNEL_LENGTH // 2
    for j in range(KERNEL_LENGTH):
        offset = (j - center) * dilation
        if offset == 0:
            stack[j] = x
        elif offset > 0:
            if offset < length:
                stack[j, :, : length - offset] = x[:, offset:]
        else:
            if -offset < length:
                stack[j, :, -offset:] = x[:, : length + offset]
    return stack


class MiniRocket:
    """The MiniRocket transform.

    Args:
        num_features: total output feature count (paper: ~10K). For
            multivariate input the budget is split evenly across
            channels; the realized count is rounded down to a multiple
            of 84 per channel and never below 84.
        max_dilations_per_kernel: cap on distinct dilations per kernel.
        seed: seed for the training-example choice used to set biases.

    Usage::

        rocket = MiniRocket(num_features=9996)
        rocket.fit(x_train)             # (n, length) or (n, ch, length)
        features = rocket.transform(x)  # (n, realized_num_features)
    """

    def __init__(
        self,
        num_features: int = 9996,
        max_dilations_per_kernel: int = 32,
        seed: int = 0,
    ) -> None:
        if num_features < NUM_KERNELS:
            raise ConfigurationError(
                f"num_features must be >= {NUM_KERNELS}, got {num_features}"
            )
        if max_dilations_per_kernel < 1:
            raise ConfigurationError("max_dilations_per_kernel must be >= 1")
        self.num_features = num_features
        self.max_dilations_per_kernel = max_dilations_per_kernel
        self.seed = seed
        self._fitted = False
        self._n_channels: Optional[int] = None
        self._input_length: Optional[int] = None
        self._dilations: Optional[np.ndarray] = None
        self._features_per_dilation: Optional[np.ndarray] = None
        # biases[channel] -> list over dilations of (84, features) arrays
        self._biases: Optional[List[List[np.ndarray]]] = None

    @staticmethod
    def _as_3d(x: np.ndarray) -> np.ndarray:
        """Normalize input to ``(n_instances, n_channels, length)``."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        if x.ndim != 3:
            raise SignalError(
                f"expected (n, length) or (n, channels, length), got {x.shape}"
            )
        if x.shape[0] == 0:
            raise SignalError("no instances to transform")
        if x.shape[2] < KERNEL_LENGTH:
            raise SignalError(
                f"series length {x.shape[2]} shorter than kernel "
                f"length {KERNEL_LENGTH}"
            )
        return x

    @property
    def n_features_out(self) -> int:
        """Realized output feature count (available after :meth:`fit`)."""
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        per_channel = NUM_KERNELS * int(np.sum(self._features_per_dilation))
        return per_channel * int(self._n_channels)

    @property
    def valid_pooling_mask(self) -> np.ndarray:
        """Boolean mask over output columns: True where PPV pools only
        the valid (unpadded) convolution region.

        Valid-pooled features are exactly offset-invariant (the
        zero-sum kernels cancel constants); padded-pooled features see
        the zero padding and are not.
        """
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        mask: List[bool] = []
        for _ch in range(int(self._n_channels)):
            for n_feat in self._features_per_dilation:
                for k in range(NUM_KERNELS):
                    mask.extend((k + f) % 2 == 1 for f in range(int(n_feat)))
        return np.asarray(mask, dtype=bool)

    def fit(self, x: np.ndarray) -> "MiniRocket":
        """Fix dilations and biases from training data.

        Args:
            x: training series, shape ``(n, length)`` or
                ``(n, channels, length)``.
        """
        x = self._as_3d(x)
        n, channels, length = x.shape
        per_channel_budget = max(NUM_KERNELS, self.num_features // channels)
        self._dilations, self._features_per_dilation = _fit_dilations(
            length, per_channel_budget, self.max_dilations_per_kernel
        )
        rng = np.random.default_rng(self.seed)

        biases: List[List[np.ndarray]] = []
        for ch in range(channels):
            channel_biases: List[np.ndarray] = []
            for dilation, n_feat in zip(
                self._dilations, self._features_per_dilation
            ):
                quantiles = _golden_quantiles(int(n_feat) * NUM_KERNELS).reshape(
                    NUM_KERNELS, int(n_feat)
                )
                # One random training example per (dilation, channel)
                # supplies the convolution-output quantiles.
                example = x[rng.integers(0, n), ch][np.newaxis, :]
                stack = _shifted_stack(example, int(dilation))
                c_alpha = -stack.sum(axis=0)
                kernel_biases = np.empty((NUM_KERNELS, int(n_feat)))
                for k, idx in enumerate(KERNEL_INDICES):
                    conv = c_alpha + 3.0 * (
                        stack[idx[0]] + stack[idx[1]] + stack[idx[2]]
                    )
                    kernel_biases[k] = np.quantile(conv[0], quantiles[k])
                channel_biases.append(kernel_biases)
            biases.append(channel_biases)

        self._biases = biases
        self._n_channels = channels
        self._input_length = length
        self._fitted = True
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Transform series into PPV features.

        Args:
            x: series with the same channel count and length as the
                training data.

        Returns:
            Feature matrix of shape ``(n, n_features_out)``.
        """
        if not self._fitted:
            raise NotFittedError("MiniRocket.fit has not been called")
        x = self._as_3d(x)
        n, channels, length = x.shape
        if channels != self._n_channels:
            raise SignalError(
                f"fitted on {self._n_channels} channels, got {channels}"
            )
        if length != self._input_length:
            raise SignalError(
                f"fitted on length {self._input_length}, got {length}"
            )

        blocks: List[np.ndarray] = []
        center = KERNEL_LENGTH // 2
        for ch in range(channels):
            xc = x[:, ch, :]
            for d_index, (dilation, n_feat) in enumerate(
                zip(self._dilations, self._features_per_dilation)
            ):
                dilation = int(dilation)
                n_feat = int(n_feat)
                stack = _shifted_stack(xc, dilation)
                c_alpha = -stack.sum(axis=0)
                pad = center * dilation
                valid = slice(pad, length - pad) if length > 2 * pad else slice(0, length)
                biases = self._biases[ch][d_index]
                for k, idx in enumerate(KERNEL_INDICES):
                    conv = c_alpha + 3.0 * (
                        stack[idx[0]] + stack[idx[1]] + stack[idx[2]]
                    )
                    # Alternate padded/valid pooling regions across the
                    # (kernel, feature) grid, as in the reference
                    # implementation; both groups are one broadcast each.
                    feats = np.empty((n_feat, n))
                    padded_slice = slice(k % 2, None, 2)
                    valid_slice = slice((k + 1) % 2, None, 2)
                    padded_b = biases[k, padded_slice]
                    valid_b = biases[k, valid_slice]
                    if padded_b.size:
                        feats[padded_slice] = np.mean(
                            conv[np.newaxis]
                            > padded_b[:, np.newaxis, np.newaxis],
                            axis=2,
                        )
                    if valid_b.size:
                        feats[valid_slice] = np.mean(
                            conv[np.newaxis, :, valid]
                            > valid_b[:, np.newaxis, np.newaxis],
                            axis=2,
                        )
                    blocks.extend(feats)
        return np.column_stack(blocks)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its transform."""
        return self.fit(x).transform(x)
