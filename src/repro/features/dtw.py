"""Banded dynamic time warping.

The manual-feature baseline (Fig. 11 / Table I of the paper) follows
Shang & Wu's approach of comparing pulse waveforms with DTW distances
to enrolled templates. DTW is the dominant cost of that baseline — the
paper reports roughly 100x the enrollment time and 35x the
authentication time of the ROCKET pipeline — so this implementation is
honest about the cost: a standard O(n * band) dynamic program with a
Sakoe-Chiba band, no approximations.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, SignalError


def dtw_distance(
    a: np.ndarray,
    b: np.ndarray,
    band_fraction: float = 0.1,
) -> float:
    """DTW distance between two 1-D sequences.

    Args:
        a: first sequence.
        b: second sequence.
        band_fraction: Sakoe-Chiba band half-width as a fraction of the
            longer sequence length (at least 1 sample).

    Returns:
        The accumulated squared-difference DTW cost, normalized by the
        warping-path-independent factor ``len(a) + len(b)`` so that
        distances are comparable across sequence lengths.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise SignalError("dtw_distance expects 1-D sequences")
    if a.size == 0 or b.size == 0:
        raise SignalError("dtw_distance received an empty sequence")
    if not 0 < band_fraction <= 1:
        raise ConfigurationError(
            f"band fraction must be in (0, 1], got {band_fraction}"
        )

    n, m = a.size, b.size
    band = max(1, int(round(band_fraction * max(n, m))))
    band = max(band, abs(n - m))  # keep the corner reachable

    inf = np.inf
    prev = np.full(m + 1, inf)
    prev[0] = 0.0
    current = np.empty(m + 1)

    for i in range(1, n + 1):
        current.fill(inf)
        lo = max(1, i - band)
        hi = min(m, i + band)
        cost = (a[i - 1] - b[lo - 1 : hi]) ** 2
        # current[j] = cost + min(prev[j], prev[j-1], current[j-1]);
        # the current[j-1] term forces a sequential scan over the band.
        window_prev = prev[lo : hi + 1]
        window_diag = prev[lo - 1 : hi]
        best_without_left = np.minimum(window_prev, window_diag)
        running = inf
        for offset in range(hi - lo + 1):
            running = cost[offset] + min(best_without_left[offset], running)
            current[lo + offset] = running
        prev, current = current, prev

    total = prev[m]
    return float(total / (n + m))
