"""Hand-crafted feature extraction (the Fig. 11 / Table I baseline).

Reproduces the comparison method of the paper: statistical descriptors
of each channel plus DTW distances to templates enrolled from the
legitimate user's data (following Shang & Wu's PPG-gesture approach,
which the P2Auth authors re-implemented and tuned on their dataset).

The enrollment step selects a per-channel *medoid* template by pairwise
DTW over the enrollment samples — the quadratic number of DTW runs is
what makes this baseline's enrollment two orders of magnitude slower
than the MiniRocket pipeline (Table I). Transforming a probe costs one
DTW per channel, which dominates authentication time the same way.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np
from scipy import stats as spstats

from ..errors import NotFittedError, SignalError
from .dtw import dtw_distance

#: Per-channel statistical descriptors, in output order.
_STAT_NAMES: Tuple[str, ...] = (
    "mean",
    "std",
    "skewness",
    "kurtosis",
    "rms",
    "peak_to_peak",
    "iqr",
    "zero_cross_rate",
    "energy",
    "dominant_freq_bin",
    "spectral_entropy",
    "n_peaks",
    "max_abs",
    "dtw_to_template",
)


def manual_feature_names(n_channels: int) -> List[str]:
    """Names of the manual feature columns for ``n_channels`` channels."""
    return [
        f"ch{ch}_{name}" for ch in range(n_channels) for name in _STAT_NAMES
    ]


def _channel_stats(x: np.ndarray) -> List[float]:
    """Statistical descriptors of one channel (all but the DTW column)."""
    n = x.size
    std = float(np.std(x))
    centered = x - np.mean(x)
    zero_crossings = int(np.sum(np.signbit(centered[:-1]) != np.signbit(centered[1:])))

    spectrum = np.abs(np.fft.rfft(centered)) ** 2
    total = float(np.sum(spectrum))
    if total > 0:
        p = spectrum / total
        nonzero = p[p > 0]
        entropy = float(-np.sum(nonzero * np.log(nonzero)))
        dominant = int(np.argmax(spectrum))
    else:
        entropy = 0.0
        dominant = 0

    interior = x[1:-1]
    n_peaks = int(np.sum((interior > x[:-2]) & (interior > x[2:]))) if n > 2 else 0

    return [
        float(np.mean(x)),
        std,
        float(spstats.skew(x)) if std > 0 else 0.0,
        float(spstats.kurtosis(x)) if std > 0 else 0.0,
        float(np.sqrt(np.mean(x ** 2))),
        float(np.ptp(x)),
        float(np.subtract(*np.percentile(x, [75, 25]))),
        zero_crossings / max(1, n - 1),
        float(np.sum(x ** 2)),
        float(dominant),
        entropy,
        float(n_peaks),
        float(np.max(np.abs(x))),
    ]


class ManualFeatureExtractor:
    """Statistical + DTW-template features per channel.

    Args:
        band_fraction: DTW Sakoe-Chiba band width.
        dtw_stride: subsampling stride applied to sequences before DTW
            (1 = full resolution). The baseline is deliberately
            expensive; the stride exists so tests can run it quickly.
    """

    def __init__(self, band_fraction: float = 0.1, dtw_stride: int = 1) -> None:
        if dtw_stride < 1:
            raise SignalError("dtw_stride must be >= 1")
        self.band_fraction = band_fraction
        self.dtw_stride = dtw_stride
        self._templates: Optional[np.ndarray] = None

    @staticmethod
    def _as_3d(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        if x.ndim != 3:
            raise SignalError(
                f"expected (n, length) or (n, channels, length), got {x.shape}"
            )
        if x.shape[0] == 0:
            raise SignalError("no instances provided")
        return x

    def fit(self, enrollment: np.ndarray) -> "ManualFeatureExtractor":
        """Select per-channel medoid templates from enrollment samples.

        Args:
            enrollment: legitimate-user series, shape ``(n, length)``
                or ``(n, channels, length)``.
        """
        x = self._as_3d(enrollment)
        n, channels, _length = x.shape
        templates = []
        for ch in range(channels):
            series = x[:, ch, :: self.dtw_stride]
            if n == 1:
                templates.append(series[0])
                continue
            distances = np.zeros((n, n))
            for i in range(n):
                for j in range(i + 1, n):
                    d = dtw_distance(series[i], series[j], self.band_fraction)
                    distances[i, j] = d
                    distances[j, i] = d
            medoid = int(np.argmin(distances.sum(axis=1)))
            templates.append(series[medoid])
        self._templates = np.vstack(templates)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Extract features; requires :meth:`fit` for the DTW column.

        Returns:
            Feature matrix of shape ``(n, channels * len(_STAT_NAMES))``.
        """
        if self._templates is None:
            raise NotFittedError("ManualFeatureExtractor.fit has not been called")
        x = self._as_3d(x)
        n, channels, _length = x.shape
        if channels != self._templates.shape[0]:
            raise SignalError(
                f"fitted on {self._templates.shape[0]} channels, got {channels}"
            )
        rows = []
        for i in range(n):
            row: List[float] = []
            for ch in range(channels):
                series = x[i, ch]
                row.extend(_channel_stats(series))
                row.append(
                    dtw_distance(
                        series[:: self.dtw_stride],
                        self._templates[ch],
                        self.band_fraction,
                    )
                )
            rows.append(row)
        return np.asarray(rows)

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit templates on ``x`` and return its features."""
        return self.fit(x).transform(x)

    def template_distances(self, x: np.ndarray) -> np.ndarray:
        """Mean DTW distance to the templates, averaged over channels.

        This is the quantity Shang & Wu threshold (tau = 1.7 after
        tuning in the paper's re-implementation); exposed separately so
        the threshold-based authenticator can use it directly.
        """
        if self._templates is None:
            raise NotFittedError("ManualFeatureExtractor.fit has not been called")
        x = self._as_3d(x)
        n, channels, _length = x.shape
        if channels != self._templates.shape[0]:
            raise SignalError(
                f"fitted on {self._templates.shape[0]} channels, got {channels}"
            )
        out = np.empty(n)
        for i in range(n):
            dists = [
                dtw_distance(
                    x[i, ch, :: self.dtw_stride],
                    self._templates[ch],
                    self.band_fraction,
                )
                for ch in range(channels)
            ]
            out[i] = float(np.mean(dists))
        return out
