"""Configuration objects with the paper's default parameters.

Three frozen dataclasses collect every tunable of the reproduction:

- :class:`SimulationConfig` — physics of the synthetic PPG substrate
  (the substitution for the paper's human-subject data collection).
- :class:`PipelineConfig` — the signal-processing constants Section IV
  fixes (calibration window 30, energy window 20, segmentation window
  90, threshold = 1/2 mean short-time energy, 100 Hz).
- :class:`ProtocolConfig` — the evaluation protocol of Section V
  (15 volunteers, 5 PINs, >=18 repetitions, 100 third-party samples).

All configs are immutable; derive variants with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from .errors import ConfigurationError

#: The five PINs volunteers typed in the paper's data collection.
PAPER_PINS: Tuple[str, ...] = ("1628", "3570", "5094", "6938", "7412")


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of the synthetic PPG/accelerometer substrate.

    The defaults are tuned so that the *relative* results of the paper's
    evaluation hold: keystroke artifacts dominate the heartbeat
    component, users are separable from full waveforms, single
    keystrokes are noisier than full entries, infrared channels carry a
    cleaner artifact than red ones, and wrist acceleration during static
    typing is small.

    Attributes:
        fs: PPG sampling rate in Hz (prototype: 100 Hz).
        accel_fs: accelerometer sampling rate in Hz (prototype: 75 Hz).
        heart_rate_range: per-user resting heart rate range, bpm.
        hrv_std: per-beat period jitter, as a fraction of the period.
        pulse_amplitude: nominal amplitude of the cardiac AC component.
        artifact_amplitude_range: per-user keystroke artifact peak
            amplitude range; keystrokes must exceed heartbeat peaks
            (Section III observation).
        artifact_duration: nominal artifact support in seconds.
        inter_key_interval: mean gap between keystrokes in seconds
            (the paper measures ~1.1 s).
        inter_key_jitter: standard deviation of the gap, seconds.
        lead_in: seconds of artifact-free signal before the first key.
        lead_out: seconds of artifact-free signal after the last key.
        timestamp_jitter: bound of the uniform communication-delay
            offset between true and phone-reported keystroke times,
            seconds. Must stay within half the calibration window.
        baseline_wander_amplitude: amplitude of slow baseline drift.
        noise_std: standard deviation of wideband sensor noise.
        fidget_rate: expected number of spurious (non-keystroke) motion
            bumps per second, modelling restless users.
        fidget_amplitude: amplitude scale of spurious bumps.
        user_instability_range: per-user multiplier range applied to
            fidget and noise levels (volunteer 8 vs volunteer 11 in
            Fig. 8 of the paper).
        red_noise_factor: extra noise multiplier on red channels
            relative to infrared (red penetrates less deeply).
        red_specificity_boost: weight shift making red channels weight
            the user-specific artifact component more strongly, giving
            red a better rejection rate (Fig. 13b).
        adc_bits: ADC resolution used for quantization.
        adc_full_scale: ADC full-scale amplitude.
        accel_keystroke_amplitude: peak wrist acceleration per key
            press during static typing, in g; deliberately small.
        accel_noise_std: accelerometer noise floor in g.
    """

    fs: float = 100.0
    accel_fs: float = 75.0
    heart_rate_range: Tuple[float, float] = (58.0, 92.0)
    hrv_std: float = 0.035
    pulse_amplitude: float = 1.0
    artifact_amplitude_range: Tuple[float, float] = (2.2, 4.2)
    artifact_duration: float = 0.55
    inter_key_interval: float = 1.1
    inter_key_jitter: float = 0.12
    lead_in: float = 1.0
    lead_out: float = 0.8
    timestamp_jitter: float = 0.12
    baseline_wander_amplitude: float = 0.8
    noise_std: float = 0.16
    fidget_rate: float = 0.05
    fidget_amplitude: float = 1.1
    user_instability_range: Tuple[float, float] = (0.5, 2.4)
    red_noise_factor: float = 1.7
    red_specificity_boost: float = 0.5
    adc_bits: int = 18
    adc_full_scale: float = 24.0
    accel_keystroke_amplitude: float = 0.15
    accel_noise_std: float = 0.012

    def __post_init__(self) -> None:
        if self.fs <= 0 or self.accel_fs <= 0:
            raise ConfigurationError("sampling rates must be positive")
        low, high = self.heart_rate_range
        if not 0 < low <= high:
            raise ConfigurationError(
                f"invalid heart rate range: {self.heart_rate_range}"
            )
        low, high = self.artifact_amplitude_range
        if not 0 < low <= high:
            raise ConfigurationError(
                f"invalid artifact amplitude range: {self.artifact_amplitude_range}"
            )
        if self.inter_key_interval <= 0:
            raise ConfigurationError("inter-key interval must be positive")
        if self.timestamp_jitter < 0:
            raise ConfigurationError("timestamp jitter must be non-negative")
        if self.adc_bits < 2:
            raise ConfigurationError("ADC must have at least 2 bits")


@dataclass(frozen=True)
class PipelineConfig:
    """Signal-processing constants fixed by Section IV of the paper.

    Attributes:
        fs: sampling rate the pipeline expects, Hz.
        median_kernel: median-filter kernel length (noise removal).
        sg_window: Savitzky-Golay window for calibration smoothing.
        sg_polyorder: Savitzky-Golay polynomial order.
        calibration_window: extreme-point search window in samples
            (paper: 30 at 100 Hz).
        detrend_lambda: smoothness-priors regularization parameter.
        energy_window: short-time energy window in samples (paper: 20).
        energy_threshold_ratio: keystroke-detection threshold as a
            fraction of the mean short-time energy (paper: 1/2).
        segment_window: single-keystroke segment length in samples
            (paper: 90, to avoid overlapping adjacent keystrokes).
    """

    fs: float = 100.0
    median_kernel: int = 5
    sg_window: int = 11
    sg_polyorder: int = 3
    calibration_window: int = 30
    detrend_lambda: float = 50.0
    energy_window: int = 20
    energy_threshold_ratio: float = 0.5
    segment_window: int = 90

    def __post_init__(self) -> None:
        if self.fs <= 0:
            raise ConfigurationError("sampling rate must be positive")
        if self.median_kernel < 1 or self.median_kernel % 2 == 0:
            raise ConfigurationError("median kernel must be a positive odd integer")
        if self.sg_window % 2 == 0 or self.sg_window <= self.sg_polyorder:
            raise ConfigurationError(
                "SG window must be odd and larger than the polynomial order"
            )
        if self.calibration_window < 2:
            raise ConfigurationError("calibration window must be >= 2 samples")
        if self.detrend_lambda <= 0:
            raise ConfigurationError("detrend lambda must be positive")
        if self.energy_window < 1:
            raise ConfigurationError("energy window must be >= 1 sample")
        if not 0 < self.energy_threshold_ratio < 1:
            raise ConfigurationError("energy threshold ratio must be in (0, 1)")
        if self.segment_window < 4:
            raise ConfigurationError("segment window must be >= 4 samples")

    def scaled_to(self, fs: float) -> "PipelineConfig":
        """Return a config with sample-count windows rescaled to ``fs``.

        Used by the sampling-rate experiments (Fig. 16/17): window sizes
        are defined in samples at 100 Hz and must shrink proportionally
        when the signal is decimated.
        """
        from dataclasses import replace

        if fs <= 0:
            raise ConfigurationError("sampling rate must be positive")
        ratio = fs / self.fs

        def scale(n: int, minimum: int) -> int:
            return max(minimum, int(round(n * ratio)))

        def scale_odd(n: int, minimum: int) -> int:
            scaled = scale(n, minimum)
            return scaled if scaled % 2 == 1 else scaled + 1

        return replace(
            self,
            fs=fs,
            median_kernel=scale_odd(self.median_kernel, 3),
            sg_window=scale_odd(self.sg_window, self.sg_polyorder + 2),
            calibration_window=scale(self.calibration_window, 4),
            energy_window=scale(self.energy_window, 2),
            segment_window=scale(self.segment_window, 8),
        )


@dataclass(frozen=True)
class ProtocolConfig:
    """Evaluation protocol from Section V of the paper.

    Attributes:
        n_users: number of volunteers (paper: 15).
        pins: PINs typed by every volunteer.
        repetitions: PIN-entry repetitions per user per PIN (paper: >=18).
        enroll_samples: legitimate entries used for enrollment (paper
            caps usability at 9 PIN entries).
        third_party_samples: third-party negative samples stored on the
            phone for training (paper default: 100).
        random_attack_entries: attacker entries used to evaluate the
            random-attack true rejection rate (paper: 150).
        n_attackers: number of distinct attackers (paper: 4).
    """

    n_users: int = 15
    pins: Tuple[str, ...] = PAPER_PINS
    repetitions: int = 18
    enroll_samples: int = 9
    third_party_samples: int = 100
    random_attack_entries: int = 150
    n_attackers: int = 4

    def __post_init__(self) -> None:
        if self.n_users < 2:
            raise ConfigurationError("need at least 2 users (one legit, one other)")
        if not self.pins:
            raise ConfigurationError("at least one PIN is required")
        for pin in self.pins:
            if not pin.isdigit() or not pin:
                raise ConfigurationError(f"invalid PIN: {pin!r}")
        if self.repetitions < 2:
            raise ConfigurationError("need at least 2 repetitions per user")
        if self.enroll_samples < 1:
            raise ConfigurationError("need at least 1 enrollment sample")
        if self.third_party_samples < 0:
            raise ConfigurationError("third-party sample count must be >= 0")
