"""Core data types shared across the P2Auth reproduction.

The types here mirror the artifacts that flow through the paper's
pipeline (Fig. 4): raw multi-channel PPG recordings, keystroke events
with both the coarse phone-reported timestamp and the ground-truth
moment, whole PIN-entry trials, and segmented single-keystroke
waveforms.

All signal payloads are ``numpy`` arrays with shape conventions:

- multi-channel recording samples: ``(n_channels, n_samples)``
- single-channel waveform: ``(n_samples,)``
- segmented multi-channel keystroke: ``(n_channels, window)``
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional, Sequence, Tuple

import numpy as np

from .errors import ConfigurationError

#: Keys available on the simulated 3x4 PIN pad.
PIN_PAD_KEYS: Tuple[str, ...] = tuple("1234567890")


class Hand(enum.Enum):
    """Which hand performed a keystroke.

    The smartwatch is worn on the left wrist in the paper's study, so
    only ``LEFT`` keystrokes leave a usable artifact in the PPG trace.
    """

    LEFT = "left"
    RIGHT = "right"


class InputCase(enum.Enum):
    """Input case decided by the PIN Input Case Identification module."""

    ONE_HANDED = "one_handed"
    TWO_HANDED_3 = "two_handed_3"
    TWO_HANDED_2 = "two_handed_2"
    REJECT = "reject"


class Wavelength(enum.Enum):
    """LED wavelength of a PPG channel (MAX30101 has red and infrared)."""

    RED = "red"
    INFRARED = "infrared"


@dataclass(frozen=True)
class ChannelInfo:
    """Metadata describing one PPG channel.

    Attributes:
        sensor_site: index of the physical sensor module on the wrist
            band (the prototype has two modules on either side of the
            wrist).
        wavelength: LED wavelength used by this channel.
    """

    sensor_site: int
    wavelength: Wavelength

    @property
    def label(self) -> str:
        """Human-readable channel label, e.g. ``"s0/infrared"``."""
        return f"s{self.sensor_site}/{self.wavelength.value}"


#: Channel layout of the wearable prototype: two sensor modules, each
#: with a red and an infrared LED, giving four channels total.
PROTOTYPE_CHANNELS: Tuple[ChannelInfo, ...] = (
    ChannelInfo(sensor_site=0, wavelength=Wavelength.INFRARED),
    ChannelInfo(sensor_site=0, wavelength=Wavelength.RED),
    ChannelInfo(sensor_site=1, wavelength=Wavelength.INFRARED),
    ChannelInfo(sensor_site=1, wavelength=Wavelength.RED),
)


@dataclass(frozen=True)
class PPGRecording:
    """A multi-channel PPG recording.

    Attributes:
        samples: array of shape ``(n_channels, n_samples)``.
        fs: sampling rate in Hz.
        channels: per-channel metadata, one entry per row of ``samples``.
        start_time: wall-clock time (seconds) of the first sample;
            keystroke timestamps are expressed on the same clock.
    """

    samples: np.ndarray
    fs: float
    channels: Tuple[ChannelInfo, ...] = PROTOTYPE_CHANNELS
    start_time: float = 0.0

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[np.newaxis, :]
        if samples.ndim != 2:
            raise ConfigurationError(
                f"PPG samples must be 1-D or 2-D, got shape {samples.shape}"
            )
        if self.fs <= 0:
            raise ConfigurationError(f"sampling rate must be positive, got {self.fs}")
        if len(self.channels) != samples.shape[0]:
            raise ConfigurationError(
                f"{samples.shape[0]} channel rows but "
                f"{len(self.channels)} channel descriptors"
            )
        object.__setattr__(self, "samples", samples)

    @property
    def n_channels(self) -> int:
        """Number of PPG channels."""
        return self.samples.shape[0]

    @property
    def n_samples(self) -> int:
        """Number of samples per channel."""
        return self.samples.shape[1]

    @property
    def duration(self) -> float:
        """Recording duration in seconds."""
        return self.n_samples / self.fs

    def time_axis(self) -> np.ndarray:
        """Wall-clock time of each sample, shape ``(n_samples,)``."""
        return self.start_time + np.arange(self.n_samples) / self.fs

    def sample_index(self, time: float) -> int:
        """Return the sample index closest to wall-clock ``time``.

        Raises:
            ConfigurationError: if ``time`` falls outside the recording.
        """
        idx = int(round((time - self.start_time) * self.fs))
        if idx < 0 or idx >= self.n_samples:
            raise ConfigurationError(
                f"time {time:.3f}s outside recording "
                f"[{self.start_time:.3f}, {self.start_time + self.duration:.3f}]s"
            )
        return idx

    def select_channels(self, indices: Sequence[int]) -> "PPGRecording":
        """Return a new recording containing only the given channel rows."""
        indices = list(indices)
        if not indices:
            raise ConfigurationError("at least one channel must be selected")
        return replace(
            self,
            samples=self.samples[indices],
            channels=tuple(self.channels[i] for i in indices),
        )

    def with_samples(self, samples: np.ndarray) -> "PPGRecording":
        """Return a copy with ``samples`` replaced (same channel layout)."""
        return replace(self, samples=samples)


@dataclass(frozen=True)
class AccelRecording:
    """A 3-axis accelerometer recording at ``fs`` Hz.

    Attributes:
        samples: array of shape ``(3, n_samples)`` in g units.
        fs: sampling rate in Hz (75 Hz on the prototype's LIS2DH12).
        start_time: wall-clock time of the first sample.
    """

    samples: np.ndarray
    fs: float
    start_time: float = 0.0

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 2 or samples.shape[0] != 3:
            raise ConfigurationError(
                f"accelerometer samples must have shape (3, n), got {samples.shape}"
            )
        if self.fs <= 0:
            raise ConfigurationError(f"sampling rate must be positive, got {self.fs}")
        object.__setattr__(self, "samples", samples)

    @property
    def n_samples(self) -> int:
        """Number of samples per axis."""
        return self.samples.shape[1]

    @property
    def duration(self) -> float:
        """Recording duration in seconds."""
        return self.n_samples / self.fs


@dataclass(frozen=True)
class KeystrokeEvent:
    """One keystroke within a PIN-entry trial.

    Attributes:
        key: the digit pressed, one of :data:`PIN_PAD_KEYS`.
        true_time: ground-truth moment of the press (simulator clock,
            seconds). Unavailable to the authentication pipeline; kept
            for evaluation of the calibration module.
        reported_time: the coarse timestamp recorded by the phone and
            transmitted to the wearable, offset by communication delay.
        hand: which hand pressed the key.
    """

    key: str
    true_time: float
    reported_time: float
    hand: Hand = Hand.LEFT

    def __post_init__(self) -> None:
        if self.key not in PIN_PAD_KEYS:
            raise ConfigurationError(f"unknown PIN pad key: {self.key!r}")


@dataclass(frozen=True)
class PinEntryTrial:
    """A complete PIN-entry attempt captured by the prototype.

    This is the unit of data the pipeline consumes: the raw PPG
    recording plus the phone-reported keystroke events, the typed PIN,
    and (for evaluation only) the identity of the person who typed it.

    Attributes:
        recording: multi-channel PPG covering the whole entry.
        events: keystroke events in press order, one per typed digit.
        pin: the digits typed, e.g. ``"1628"``.
        user_id: simulator identity of the typist (evaluation only).
        one_handed: whether the typist used a single thumb for all keys.
        accel: optional simultaneous accelerometer recording.
    """

    recording: PPGRecording
    events: Tuple[KeystrokeEvent, ...]
    pin: str
    user_id: int
    one_handed: bool = True
    accel: Optional[AccelRecording] = None

    def __post_init__(self) -> None:
        if len(self.events) != len(self.pin):
            raise ConfigurationError(
                f"{len(self.events)} events but PIN has {len(self.pin)} digits"
            )
        for event, digit in zip(self.events, self.pin):
            if event.key != digit:
                raise ConfigurationError(
                    f"event key {event.key!r} does not match PIN digit {digit!r}"
                )

    @property
    def watch_hand_events(self) -> Tuple[KeystrokeEvent, ...]:
        """Events performed by the hand wearing the watch (left)."""
        return tuple(e for e in self.events if e.hand is Hand.LEFT)


@dataclass(frozen=True)
class SegmentedKeystroke:
    """A single-keystroke waveform cut from a preprocessed recording.

    Attributes:
        samples: array of shape ``(n_channels, window)``.
        key: the digit this waveform corresponds to.
        center_index: sample index of the calibrated keystroke moment in
            the source recording.
        fs: sampling rate of the source recording.
    """

    samples: np.ndarray
    key: str
    center_index: int
    fs: float

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim != 2:
            raise ConfigurationError(
                f"segmented keystroke must be 2-D (channels, window), "
                f"got shape {samples.shape}"
            )
        object.__setattr__(self, "samples", samples)

    @property
    def n_channels(self) -> int:
        """Number of channels in the segment."""
        return self.samples.shape[0]

    @property
    def window(self) -> int:
        """Segment length in samples."""
        return self.samples.shape[1]


@dataclass(frozen=True)
class LabeledWaveform:
    """A training/test waveform with its identity label.

    Attributes:
        samples: array of shape ``(n_channels, n_samples)``.
        user_id: identity of the person who produced it.
        key: the key pressed, or ``None`` for fused/full waveforms.
    """

    samples: np.ndarray
    user_id: int
    key: Optional[str] = None

    def __post_init__(self) -> None:
        samples = np.asarray(self.samples, dtype=np.float64)
        if samples.ndim == 1:
            samples = samples[np.newaxis, :]
        object.__setattr__(self, "samples", samples)
