"""Runtime lock-discipline checks behind ``REPRO_CONCURRENCY_DEBUG``.

The static side of the concurrency contract lives in
``tools/reprolint`` (rules RL009-RL012 and the generated
``CONCURRENCY.md`` manifest): state is *declared* guarded with
``# guarded-by: <lock>`` annotations and the linter proves every access
sits inside a ``with <lock>:`` block. This module is the runtime half:
the same declarations can be asserted while the race-stress harness
(``tests/concurrency/``) thrashes the real objects.

Two pieces:

* :func:`checked_rlock` — the lock constructor guarded classes use.
  With ``REPRO_CONCURRENCY_DEBUG`` unset (production) it returns a
  plain :class:`threading.RLock`, so the debug machinery costs nothing
  on the hot path. With the flag set it returns a
  :class:`CheckedRLock` that tracks its owning thread.
* :func:`assert_owned` — called by ``# guarded-by: caller`` helpers
  (methods whose contract is "the caller already holds the lock").  A
  no-op in production; under the debug flag it raises
  :class:`~repro.errors.ConcurrencyError` when the calling thread does
  not own the lock — turning a silent data race into a loud failure.

The debug flag is read once per lock at construction time: services
set the environment before building their registries/caches, which is
also what the CI race-stress job does.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Optional, Protocol

from .errors import ConcurrencyError

#: Environment variable enabling the runtime ownership assertions.
CONCURRENCY_DEBUG_ENV = "REPRO_CONCURRENCY_DEBUG"


def debug_enabled() -> bool:
    """Whether ``REPRO_CONCURRENCY_DEBUG`` asks for runtime checks."""
    value = os.environ.get(CONCURRENCY_DEBUG_ENV, "0").strip().lower()
    return value not in ("", "0", "false", "no", "off")


class CheckedRLock:
    """A reentrant lock that knows which thread owns it.

    Drop-in for the :class:`threading.RLock` usage patterns in this
    repo (``with lock:``, ``acquire``/``release``) plus an
    :meth:`assert_owned` hook for ``guarded-by: caller`` helpers.  The
    owner bookkeeping is itself protected by the GIL: the owner field
    is only written by the thread that just acquired (or is about to
    release) the underlying RLock.
    """

    __slots__ = ("_lock", "_owner", "_count", "name")

    def __init__(self, name: str = "lock") -> None:
        self._lock = threading.RLock()
        self._owner: Optional[int] = None
        self._count = 0
        self.name = name

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._count += 1
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            raise ConcurrencyError(
                f"{self.name}: release() by a thread that does not own "
                "the lock"
            )
        self._count -= 1
        if self._count == 0:
            self._owner = None
        self._lock.release()

    def __enter__(self) -> "CheckedRLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def owned(self) -> bool:
        """Whether the calling thread currently holds this lock."""
        return self._owner == threading.get_ident()

    # threading.RLock spells the same query _is_owned(); keeping the
    # alias lets assert_owned treat both lock kinds uniformly.
    _is_owned = owned

    def assert_owned(self, what: str = "guarded state") -> None:
        """Raise unless the calling thread holds this lock."""
        if not self.owned():
            raise ConcurrencyError(
                f"{what} is guarded by {self.name!r} but was touched by "
                f"thread {threading.current_thread().name!r} without "
                "holding it"
            )


class LockLike(Protocol):
    """What guarded classes actually store: a checked lock when
    debugging, a plain RLock in production."""

    def acquire(self, blocking: bool = ..., timeout: float = ...) -> bool: ...

    def release(self) -> None: ...

    def __enter__(self) -> Any: ...

    def __exit__(self, *exc_info: object) -> Any: ...


def checked_rlock(name: str = "lock") -> LockLike:
    """A reentrant lock for ``guarded-by`` state.

    Returns a :class:`CheckedRLock` when ``REPRO_CONCURRENCY_DEBUG`` is
    set at construction time, a plain :class:`threading.RLock`
    otherwise — guarded classes pay zero overhead in production while
    the race-stress harness gets live ownership assertions.
    """
    if debug_enabled():
        return CheckedRLock(name)
    return threading.RLock()


def assert_owned(lock: LockLike, what: str = "guarded state") -> None:
    """Assert the calling thread holds ``lock`` (debug builds only).

    ``guarded-by: caller`` helpers call this at entry.  With a plain
    RLock (production) the CPython ``_is_owned`` probe is consulted
    only when the debug flag is set, so the common path is one env-less
    boolean check per call.
    """
    if isinstance(lock, CheckedRLock):
        lock.assert_owned(what)
        return
    if not debug_enabled():
        return
    is_owned = getattr(lock, "_is_owned", None)
    if is_owned is not None and not is_owned():
        raise ConcurrencyError(
            f"{what} requires the caller to hold its lock, but thread "
            f"{threading.current_thread().name!r} does not"
        )


__all__ = [
    "CONCURRENCY_DEBUG_ENV",
    "CheckedRLock",
    "assert_owned",
    "checked_rlock",
    "debug_enabled",
]
