"""Study population and trial generation.

:class:`StudyData` is the single source of trials for every
experiment. It owns the simulated population and the trial
synthesizer, and generates trials lazily under deterministic per-key
seeds: requesting ``trials(user, pin, condition, count)`` twice —
even across processes — yields identical data, and requesting a larger
``count`` extends the cached list without changing its prefix.

Conditions mirror the paper's collection protocol:

- ``one_handed`` — all four keys typed with the watch-hand thumb;
- ``double3`` / ``double2`` — two-handed entry with exactly 3 / 2
  keys pressed by the watch-wearing hand;
- ``random`` — one-handed entry of a random 4-digit sequence (the
  "random keystrokes" the volunteers also performed, used for the
  NO-PIN evaluation).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..config import PAPER_PINS, SimulationConfig
from ..errors import ConfigurationError
from ..physio import (
    TrialSynthesizer,
    UserProfile,
    drift_magnitude,
    sample_population,
)
from ..types import PinEntryTrial

#: Supported trial-generation conditions.
CONDITIONS: Tuple[str, ...] = ("one_handed", "double3", "double2", "random")


def _condition_params(condition: str) -> Dict[str, object]:
    """Map a condition name to synthesizer arguments."""
    if condition == "one_handed":
        return {"one_handed": True, "forced_left_count": None}
    if condition == "double3":
        return {"one_handed": False, "forced_left_count": 3}
    if condition == "double2":
        return {"one_handed": False, "forced_left_count": 2}
    if condition == "random":
        return {"one_handed": True, "forced_left_count": None}
    raise ConfigurationError(
        f"unknown condition {condition!r}; expected one of {CONDITIONS}"
    )


def _stable_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from heterogeneous key parts."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass
class StudyData:
    """Lazily generated study dataset.

    Args:
        n_users: population size (paper: 15).
        seed: master seed; all per-trial seeds derive from it.
        sim_config: simulation parameters.
        include_accel: synthesize accelerometer streams alongside PPG
            (needed by the Fig. 12 comparison).
    """

    n_users: int = 15
    seed: int = 0
    sim_config: SimulationConfig = field(default_factory=SimulationConfig)
    include_accel: bool = False

    def __post_init__(self) -> None:
        self.users: List[UserProfile] = sample_population(
            self.n_users, seed=self.seed, config=self.sim_config
        )
        self.synthesizer = TrialSynthesizer(self.sim_config)
        self._cache: Dict[Tuple[int, str, str], List[PinEntryTrial]] = {}
        self._aged_cache: Dict[
            Tuple[int, str, str, float], List[PinEntryTrial]
        ] = {}

    def user(self, user_id: int) -> UserProfile:
        """Profile of user ``user_id``."""
        return self.users[user_id]

    def trials(
        self,
        user_id: int,
        pin: str,
        condition: str = "one_handed",
        count: int = 18,
    ) -> List[PinEntryTrial]:
        """Return ``count`` trials for the given key, generating lazily.

        Repeated calls extend the cache; the first ``count`` trials are
        always identical for a given (user, pin, condition, seed).
        """
        if not 0 <= user_id < self.n_users:
            raise ConfigurationError(
                f"user_id {user_id} outside population of {self.n_users}"
            )
        params = _condition_params(condition)
        key = (user_id, pin, condition)
        cached = self._cache.setdefault(key, [])
        profile = self.users[user_id]
        while len(cached) < count:
            index = len(cached)
            rng = np.random.default_rng(
                _stable_seed(self.seed, user_id, pin, condition, index)
            )
            entry_pin = pin
            if condition == "random":
                entry_pin = "".join(
                    str(d) for d in rng.integers(0, 10, size=len(pin))
                )
            cached.append(
                self.synthesizer.synthesize_trial(
                    profile,
                    entry_pin,
                    rng,
                    one_handed=bool(params["one_handed"]),
                    forced_left_count=params["forced_left_count"],
                    include_accel=self.include_accel,
                )
            )
        return cached[:count]

    def aged_trials(
        self,
        user_id: int,
        pin: str,
        condition: str = "one_handed",
        count: int = 18,
        age_days: float = 0.0,
    ) -> List[PinEntryTrial]:
        """Trials from a user whose physiology has aged ``age_days``.

        The user's artifact parameters drift along their fixed
        trajectory by :func:`repro.physio.drift_magnitude` before each
        press is rendered, so probes at age ``t`` come from a drifted
        profile while ``trials`` (= age 0) stays the enrollment-day
        distribution. ``age_days=0`` delegates to :meth:`trials` and is
        therefore bit-identical to the clean data. Like :meth:`trials`,
        repeated calls with the same ``(seed, user_id, age_days)`` —
        even across processes — return bit-identical trials, and larger
        counts extend the cached list without changing its prefix.
        """
        if age_days == 0:
            return self.trials(user_id, pin, condition, count)
        if not 0 <= user_id < self.n_users:
            raise ConfigurationError(
                f"user_id {user_id} outside population of {self.n_users}"
            )
        params = _condition_params(condition)
        aging = drift_magnitude(user_id, age_days, self.seed)
        key = (user_id, pin, condition, float(age_days))
        cached = self._aged_cache.setdefault(key, [])
        profile = self.users[user_id]
        while len(cached) < count:
            index = len(cached)
            rng = np.random.default_rng(
                _stable_seed(
                    self.seed, user_id, pin, condition, "age", age_days, index
                )
            )
            entry_pin = pin
            if condition == "random":
                entry_pin = "".join(
                    str(d) for d in rng.integers(0, 10, size=len(pin))
                )
            cached.append(
                self.synthesizer.synthesize_trial(
                    profile,
                    entry_pin,
                    rng,
                    one_handed=bool(params["one_handed"]),
                    forced_left_count=params["forced_left_count"],
                    include_accel=self.include_accel,
                    aging=aging,
                )
            )
        return cached[:count]

    def emulating_trials(
        self,
        attacker_id: int,
        victim_id: int,
        pin: Optional[str],
        count: int,
        condition: str = "one_handed",
        age_days: float = 0.0,
    ) -> List[PinEntryTrial]:
        """Emulating-attack trials: attacker types ``pin`` mimicking the
        victim's rhythm (Section IV-D).

        ``pin=None`` models an emulating attack on a NO-PIN victim:
        there is no fixed PIN to copy, so the attacker imitates the
        rhythm while typing fresh random digits each attempt.
        ``age_days`` ages the *attacker's* physiology along their own
        drift trajectory (an attack at age ``t`` happens at age ``t``
        for everyone); 0 preserves the historical trial streams exactly.
        """
        params = _condition_params(condition)
        attacker = self.users[attacker_id]
        victim = self.users[victim_id]
        aging = drift_magnitude(attacker_id, age_days, self.seed)
        out = []
        for index in range(count):
            parts: Tuple[object, ...] = (
                self.seed, "EA", attacker_id, victim_id, pin, condition, index
            )
            if age_days != 0:
                parts += ("age", age_days)
            rng = np.random.default_rng(_stable_seed(*parts))
            entry_pin = pin
            if entry_pin is None:
                entry_pin = "".join(str(d) for d in rng.integers(0, 10, size=4))
            out.append(
                self.synthesizer.synthesize_trial(
                    attacker,
                    entry_pin,
                    rng,
                    one_handed=bool(params["one_handed"]),
                    forced_left_count=params["forced_left_count"],
                    rhythm_from=victim,
                    include_accel=self.include_accel,
                    aging=aging,
                )
            )
        return out

    def random_attack_trials(
        self,
        attacker_id: int,
        count: int,
        pin_length: int = 4,
        pin_pool: Optional[Tuple[str, ...]] = None,
        age_days: float = 0.0,
    ) -> List[PinEntryTrial]:
        """Random-attack trials: attacker types fresh random PINs.

        Args:
            attacker_id: the attacking user.
            count: number of attempts.
            pin_length: digits per guess (ignored with ``pin_pool``).
            pin_pool: when given, guesses are drawn uniformly from this
                pool instead of uniformly over all digit strings —
                modelling an attacker who knows the victim uses one of
                the study PINs, as in the paper's random-attack setup.
            age_days: age the attacker's physiology along their drift
                trajectory; 0 preserves the historical streams exactly.
        """
        attacker = self.users[attacker_id]
        aging = drift_magnitude(attacker_id, age_days, self.seed)
        out = []
        for index in range(count):
            parts: Tuple[object, ...] = (
                self.seed, "RA", attacker_id, index, pin_pool
            )
            if age_days != 0:
                parts += ("age", age_days)
            rng = np.random.default_rng(_stable_seed(*parts))
            if pin_pool:
                guess = pin_pool[int(rng.integers(0, len(pin_pool)))]
            else:
                guess = "".join(
                    str(d) for d in rng.integers(0, 10, size=pin_length)
                )
            out.append(
                self.synthesizer.synthesize_trial(
                    attacker,
                    guess,
                    rng,
                    one_handed=True,
                    include_accel=self.include_accel,
                    aging=aging,
                )
            )
        return out


def generate_study(
    n_users: int = 15,
    seed: int = 0,
    pins: Tuple[str, ...] = PAPER_PINS,
    repetitions: int = 18,
    sim_config: Optional[SimulationConfig] = None,
) -> StudyData:
    """Pre-generate the full paper protocol (all users, PINs, reps).

    Mostly useful for warming the cache before timing-sensitive code;
    experiments can equally let :class:`StudyData` generate lazily.
    """
    if sim_config is None:
        sim_config = SimulationConfig()
    data = StudyData(
        n_users=n_users,
        seed=seed,
        sim_config=sim_config,
    )
    for user_id in range(n_users):
        for pin in pins:
            data.trials(user_id, pin, "one_handed", repetitions)
    return data
