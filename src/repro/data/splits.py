"""Enrollment/test splitting.

The paper's protocol (Section IV-B.2): the training set contains part
of the legitimate user's data (at most 9 entries, to keep enrollment
usable) plus third-party samples; the test set holds the remaining
legitimate entries and the attacker entries.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..errors import ConfigurationError
from ..types import PinEntryTrial


def enroll_test_split(
    trials: Sequence[PinEntryTrial], enroll_n: int
) -> Tuple[List[PinEntryTrial], List[PinEntryTrial]]:
    """Split a user's trials into enrollment and test sets.

    The first ``enroll_n`` trials enroll (chronological order, as a
    real device would); the rest test authentication accuracy.

    Raises:
        ConfigurationError: if there is nothing left to test with.
    """
    trials = list(trials)
    if enroll_n < 1:
        raise ConfigurationError(f"enroll_n must be >= 1, got {enroll_n}")
    if len(trials) <= enroll_n:
        raise ConfigurationError(
            f"need more than {enroll_n} trials to split, got {len(trials)}"
        )
    return trials[:enroll_n], trials[enroll_n:]
