"""Study data generation and management.

Reproduces the paper's data collection (Section V-A): a population of
volunteers, each typing the five study PINs one- and two-handed, with
a third-party sample store for enrollment negatives. Trials are
generated lazily and cached, keyed by (user, PIN, condition), with
per-key deterministic seeding so every experiment sees the same data
for the same configuration.
"""

from .export import load_trials, save_trials
from .generation import CONDITIONS, StudyData
from .splits import enroll_test_split
from .store import ThirdPartyStore

__all__ = [
    "CONDITIONS",
    "StudyData",
    "ThirdPartyStore",
    "enroll_test_split",
    "load_trials",
    "save_trials",
]
