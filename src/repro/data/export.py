"""Saving and loading trial datasets.

Simulated study data is cheap to regenerate, but exporting a fixed
corpus matters for cross-tool comparisons (e.g. feeding the same
trials to another implementation) and for freezing the exact data
behind a published number. Trials round-trip through a single
compressed ``.npz`` archive; everything — samples, events, metadata —
is reconstructed exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

import numpy as np

from ..errors import ConfigurationError
from ..types import (
    AccelRecording,
    ChannelInfo,
    Hand,
    KeystrokeEvent,
    PinEntryTrial,
    PPGRecording,
    Wavelength,
)

#: Archive format version.
FORMAT_VERSION = 1


def _channel_meta(channels: Sequence[ChannelInfo]) -> List[dict]:
    return [
        {"sensor_site": c.sensor_site, "wavelength": c.wavelength.value}
        for c in channels
    ]


def _channels_from_meta(meta: Sequence[dict]) -> tuple:
    return tuple(
        ChannelInfo(
            sensor_site=int(m["sensor_site"]),
            wavelength=Wavelength(m["wavelength"]),
        )
        for m in meta
    )


def save_trials(path: Union[str, Path], trials: Sequence[PinEntryTrial]) -> None:
    """Serialize trials to a compressed ``.npz`` archive.

    Args:
        path: destination path.
        trials: the trials to store.
    """
    trials = list(trials)
    if not trials:
        raise ConfigurationError("no trials to save")

    arrays = {}
    meta = {"format_version": FORMAT_VERSION, "trials": []}
    for i, trial in enumerate(trials):
        rec = trial.recording
        arrays[f"trial/{i}/ppg"] = rec.samples
        entry = {
            "pin": trial.pin,
            "user_id": trial.user_id,
            "one_handed": trial.one_handed,
            "fs": rec.fs,
            "start_time": rec.start_time,
            "channels": _channel_meta(rec.channels),
            "events": [
                {
                    "key": e.key,
                    "true_time": e.true_time,
                    "reported_time": e.reported_time,
                    "hand": e.hand.value,
                }
                for e in trial.events
            ],
            "has_accel": trial.accel is not None,
        }
        if trial.accel is not None:
            arrays[f"trial/{i}/accel"] = trial.accel.samples
            entry["accel_fs"] = trial.accel.fs
            entry["accel_start_time"] = trial.accel.start_time
        meta["trials"].append(entry)

    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_trials(path: Union[str, Path]) -> List[PinEntryTrial]:
    """Load trials previously stored with :func:`save_trials`."""
    with np.load(path, allow_pickle=False) as archive:
        arrays = {key: archive[key] for key in archive.files}
    if "__meta__" not in arrays:
        raise ConfigurationError(f"{path} is not a trial archive")
    meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported archive version: {meta.get('format_version')}"
        )

    trials: List[PinEntryTrial] = []
    for i, entry in enumerate(meta["trials"]):
        recording = PPGRecording(
            samples=arrays[f"trial/{i}/ppg"],
            fs=float(entry["fs"]),
            channels=_channels_from_meta(entry["channels"]),
            start_time=float(entry["start_time"]),
        )
        events = tuple(
            KeystrokeEvent(
                key=e["key"],
                true_time=float(e["true_time"]),
                reported_time=float(e["reported_time"]),
                hand=Hand(e["hand"]),
            )
            for e in entry["events"]
        )
        accel = None
        if entry["has_accel"]:
            accel = AccelRecording(
                samples=arrays[f"trial/{i}/accel"],
                fs=float(entry["accel_fs"]),
                start_time=float(entry["accel_start_time"]),
            )
        trials.append(
            PinEntryTrial(
                recording=recording,
                events=events,
                pin=entry["pin"],
                user_id=int(entry["user_id"]),
                one_handed=bool(entry["one_handed"]),
                accel=accel,
            )
        )
    return trials
