"""Third-party sample store.

The paper stores third-party PPG data on the smartphone to supply
enrollment negatives; Fig. 14 studies how the store's size trades
authentication accuracy against rejection rate. The store draws trials
round-robin across its contributing users so every store size contains
a balanced mix of people.
"""

from __future__ import annotations

from typing import List, Sequence

from ..errors import ConfigurationError
from ..types import PinEntryTrial
from .generation import StudyData


class ThirdPartyStore:
    """Negative-sample store backed by a :class:`StudyData`.

    Args:
        data: the study dataset.
        contributor_ids: users whose trials populate the store; must
            exclude the enrolling user and any designated attackers.
        pin: the PIN whose entries the store holds (the study protocol
            has everyone type the same PINs).
        condition: trial condition stored (default one-handed).
    """

    def __init__(
        self,
        data: StudyData,
        contributor_ids: Sequence[int],
        pin: str,
        condition: str = "one_handed",
    ) -> None:
        contributor_ids = list(contributor_ids)
        if not contributor_ids:
            raise ConfigurationError("the store needs at least one contributor")
        self._data = data
        self._contributors = contributor_ids
        self._pin = pin
        self._condition = condition

    @property
    def contributors(self) -> List[int]:
        """User ids contributing to the store."""
        return list(self._contributors)

    def sample(self, n: int) -> List[PinEntryTrial]:
        """Return ``n`` trials, round-robin across contributors.

        Deterministic for a given store configuration: trial ``i``
        comes from contributor ``i % k`` at repetition ``i // k``.
        """
        if n < 1:
            raise ConfigurationError(f"store sample size must be >= 1, got {n}")
        k = len(self._contributors)
        per_user = -(-n // k)  # ceil division
        pools = [
            self._data.trials(uid, self._pin, self._condition, per_user)
            for uid in self._contributors
        ]
        out: List[PinEntryTrial] = []
        for i in range(n):
            out.append(pools[i % k][i // k])
        return out
