"""The Section V evaluation protocol.

``evaluate_user`` enrolls one victim and measures the three headline
numbers against them: authentication accuracy over held-out legitimate
entries, true rejection rate under random attacks, and true rejection
rate under emulating attacks. ``evaluate_condition`` repeats that over
a set of victims and aggregates.

Every experiment in :mod:`repro.eval.experiments` is a thin wrapper
around these two functions with different knobs — input condition,
privacy boost, feature method, classifier, channel subset (via
``transform``), sampling rate, and third-party store size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PAPER_PINS, PipelineConfig
from ..core import EnrollmentOptions, P2Auth
from ..core.enrollment import SHAREABLE_FEATURE_METHODS
from ..data import StudyData, ThirdPartyStore, enroll_test_split
from ..errors import ConfigurationError
from ..ml import RidgeClassifier
from ..types import PinEntryTrial
from .featurecache import default_cache, sharing_enabled
from .parallel import run_tasks

#: PIN used to enroll NO-PIN users: one pass over every key gives the
#: per-key models full coverage.
NO_PIN_ENROLL_SEQUENCE = "1234567890"

TrialTransform = Callable[[PinEntryTrial], PinEntryTrial]


@dataclass(frozen=True)
class UserEvaluation:
    """Per-victim evaluation outcome.

    Attributes:
        user_id: the enrolled victim.
        accuracy: legitimate-entry acceptance rate.
        trr_random: true rejection rate under random attacks.
        trr_emulating: true rejection rate under emulating attacks.
        n_test: legitimate test entries evaluated.
        n_random: random-attack entries evaluated.
        n_emulating: emulating-attack entries evaluated.
    """

    user_id: int
    accuracy: float
    trr_random: float
    trr_emulating: float
    n_test: int
    n_random: int
    n_emulating: int


@dataclass(frozen=True)
class ConditionResult:
    """Aggregate over victims for one experimental condition."""

    per_user: Tuple[UserEvaluation, ...]

    @property
    def accuracy(self) -> float:
        """Mean authentication accuracy across victims."""
        return float(np.mean([u.accuracy for u in self.per_user]))

    @property
    def trr_random(self) -> float:
        """Mean random-attack TRR across victims."""
        return float(np.mean([u.trr_random for u in self.per_user]))

    @property
    def trr_emulating(self) -> float:
        """Mean emulating-attack TRR across victims."""
        return float(np.mean([u.trr_emulating for u in self.per_user]))


def _apply(
    transform: Optional[TrialTransform], trials: Sequence[PinEntryTrial]
) -> List[PinEntryTrial]:
    if transform is None:
        return list(trials)
    return [transform(t) for t in trials]


def evaluate_user(
    data: StudyData,
    victim_id: int,
    pin: str = PAPER_PINS[0],
    *,
    condition: str = "one_handed",
    privacy_boost: bool = False,
    no_pin: bool = False,
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    attacker_ids: Sequence[int] = (),
    ra_per_attacker: int = 5,
    ea_per_attacker: int = 5,
    feature_method: str = "rocket",
    classifier_factory: Callable = RidgeClassifier,
    num_features: int = 9996,
    transform: Optional[TrialTransform] = None,
    pipeline_config: Optional[PipelineConfig] = None,
    ra_pin_pool: Optional[Tuple[str, ...]] = PAPER_PINS,
    share_negatives: Optional[bool] = None,
) -> UserEvaluation:
    """Enroll ``victim_id`` and evaluate accuracy and attack rejection.

    Args:
        data: the study dataset.
        victim_id: the user to enroll.
        pin: the victim's PIN (ignored in NO-PIN mode).
        condition: input condition tested ("one_handed", "double3",
            "double2"); enrollment always uses one-handed entries, as
            the registration prompt does in the paper.
        privacy_boost: enable waveform fusion for one-handed entries.
        no_pin: NO-PIN mode — enrollment covers every key once per
            entry and probes are random sequences.
        enroll_n: legitimate enrollment entries (paper caps at 9).
        test_n: held-out legitimate entries.
        third_party_n: negatives drawn from the third-party store.
        attacker_ids: users acting as attackers; they are excluded from
            the store so the models never see them.
        ra_per_attacker / ea_per_attacker: attack entries per attacker.
        feature_method / classifier_factory / num_features: model
            configuration forwarded to enrollment.
        transform: applied to every trial before use (channel subset,
            decimation, ...).
        pipeline_config: override pipeline constants (needed together
            with decimating transforms).
        ra_pin_pool: PIN pool random attackers guess from; ``None``
            draws uniform random digit strings instead.
        share_negatives: build the third-party negatives once per store
            content through the process-wide feature cache (see
            :mod:`repro.eval.featurecache`) instead of re-preprocessing
            and re-featurizing them for every victim. ``None`` (the
            default) resolves via the ``REPRO_SHARE_NEGATIVES``
            environment switch, which defaults to on. Only engages for
            feature methods whose extractor can be fitted on the
            negatives alone ("rocket", "raw"); "manual" always takes
            the unshared path.

    Returns:
        The victim's :class:`UserEvaluation`.
    """
    attacker_ids = list(attacker_ids)
    if victim_id in attacker_ids:
        raise ConfigurationError("the victim cannot attack themselves")

    contributor_ids = [
        uid
        for uid in range(data.n_users)
        if uid != victim_id and uid not in attacker_ids
    ]
    if not contributor_ids:
        raise ConfigurationError("no users left to populate the third-party store")

    enroll_pin = NO_PIN_ENROLL_SEQUENCE if no_pin else pin
    enroll_condition = "one_handed"

    legit_pool = data.trials(
        victim_id, enroll_pin, enroll_condition, enroll_n + (0 if no_pin else test_n)
    )
    if no_pin:
        enroll_trials = legit_pool[:enroll_n]
        test_trials = data.trials(victim_id, pin, "random", test_n)
    else:
        enroll_trials, test_trials = enroll_test_split(legit_pool, enroll_n)
        if condition != "one_handed":
            test_trials = data.trials(victim_id, pin, condition, test_n)

    store = ThirdPartyStore(data, contributor_ids, enroll_pin, enroll_condition)
    third_party = store.sample(third_party_n)

    options = EnrollmentOptions(
        privacy_boost=privacy_boost,
        num_features=num_features,
        feature_method=feature_method,
        classifier_factory=classifier_factory,
    )
    auth = P2Auth(
        pin=None if no_pin else pin,
        pipeline_config=pipeline_config,
        options=options,
    )
    transformed_third = _apply(transform, third_party)
    bank = None
    if (
        sharing_enabled(share_negatives)
        and feature_method in SHAREABLE_FEATURE_METHODS
    ):
        bank = default_cache().negative_bank(
            transformed_third, auth.config, options
        )
    auth.enroll(
        _apply(transform, enroll_trials),
        transformed_third,
        shared_negatives=bank,
    )

    accepted = [
        auth.authenticate(t).accepted for t in _apply(transform, test_trials)
    ]
    accuracy = float(np.mean(accepted)) if accepted else float("nan")

    ra_decisions: List[bool] = []
    ea_decisions: List[bool] = []
    for attacker_id in attacker_ids:
        ra_trials = data.random_attack_trials(
            attacker_id, ra_per_attacker, pin_pool=ra_pin_pool
        )
        ra_decisions.extend(
            auth.authenticate(t).accepted for t in _apply(transform, ra_trials)
        )
        ea_trials = data.emulating_trials(
            attacker_id,
            victim_id,
            None if no_pin else pin,
            ea_per_attacker,
            condition=condition if not no_pin else "one_handed",
        )
        ea_decisions.extend(
            auth.authenticate(t).accepted for t in _apply(transform, ea_trials)
        )

    trr_random = (
        float(np.mean([not d for d in ra_decisions])) if ra_decisions else float("nan")
    )
    trr_emulating = (
        float(np.mean([not d for d in ea_decisions])) if ea_decisions else float("nan")
    )

    return UserEvaluation(
        user_id=victim_id,
        accuracy=accuracy,
        trr_random=trr_random,
        trr_emulating=trr_emulating,
        n_test=len(accepted),
        n_random=len(ra_decisions),
        n_emulating=len(ea_decisions),
    )


def evaluate_condition(
    data: StudyData,
    victim_ids: Sequence[int],
    attacker_ids: Sequence[int],
    pin: str = PAPER_PINS[0],
    n_jobs: Optional[int] = None,
    **kwargs: Any,
) -> ConditionResult:
    """Evaluate one condition over several victims and aggregate.

    All keyword arguments of :func:`evaluate_user` are forwarded.
    ``n_jobs`` fans the per-victim evaluations out over a process pool
    (see :mod:`repro.eval.parallel`); results are identical to a
    serial run.
    """
    victim_ids = list(victim_ids)
    if not victim_ids:
        raise ConfigurationError("need at least one victim")
    tasks = [
        partial(
            evaluate_user, data, victim_id, pin, attacker_ids=attacker_ids,
            **kwargs,
        )
        for victim_id in victim_ids
    ]
    return ConditionResult(per_user=tuple(run_tasks(tasks, n_jobs=n_jobs)))
