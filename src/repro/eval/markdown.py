"""Markdown rendering of experiment results.

Renders :class:`~repro.eval.experiments.ExperimentResult` objects as
GitHub-flavoured markdown tables, and whole result collections as a
report document — the machinery behind ``scripts/run_experiments.py``,
which regenerates the measured side of EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from .experiments import ExperimentResult


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one experiment as a markdown section with a table."""
    lines: List[str] = [f"### {result.title}", ""]
    header = " | ".join(str(h) for h in result.headers)
    divider = " | ".join("---" for _ in result.headers)
    lines.append(f"| {header} |")
    lines.append(f"| {divider} |")
    for row in result.rows:
        lines.append("| " + " | ".join(_cell(v) for v in row) + " |")
    return "\n".join(lines)


def results_to_markdown(
    results: Iterable[ExperimentResult],
    title: str = "Measured results",
    preamble: Sequence[str] = (),
) -> str:
    """Render a collection of experiments as one markdown document."""
    parts: List[str] = [f"## {title}", ""]
    parts.extend(preamble)
    if preamble:
        parts.append("")
    for result in results:
        parts.append(result_to_markdown(result))
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"
