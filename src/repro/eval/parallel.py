"""Process-pool fan-out for the evaluation protocol.

The experiment runners spend nearly all of their time in independent
``evaluate_user`` calls — one per (victim, grid point). ``parallel_map``
spreads such calls over a ``concurrent.futures`` process pool while
keeping three properties the runners rely on:

- **Determinism** — results come back in input order, and every task is
  a pure function of picklable arguments (:class:`repro.data.StudyData`
  regenerates trials from per-key seeds, so workers reproduce the exact
  trials of the parent process). A parallel run therefore produces the
  same rows as a serial one.
- **Serial fallback** — ``n_jobs=1`` never touches multiprocessing, and
  pickling-hostile tasks or broken/unsupported pool environments fall
  back to an in-process loop instead of failing.
- **Explicit opt-in** — the worker count comes from an explicit
  ``n_jobs`` argument (CLI ``--jobs``), then the ``REPRO_N_JOBS``
  environment variable, then defaults to 1.
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

from ..errors import ConfigurationError

T = TypeVar("T")
R = TypeVar("R")

#: Environment variable consulted when no explicit worker count is given.
N_JOBS_ENV = "REPRO_N_JOBS"

#: Exceptions that demote a parallel run to the serial fallback rather
#: than failing: unpicklable tasks, a pool that died, or a platform
#: where multiprocessing primitives are unavailable.
_FALLBACK_ERRORS = (
    pickle.PicklingError,
    AttributeError,
    TypeError,
    BrokenProcessPool,
    NotImplementedError,
    PermissionError,
    OSError,
)


def resolve_n_jobs(n_jobs: Optional[int] = None) -> int:
    """Resolve the worker count: explicit value, then env var, then 1.

    Args:
        n_jobs: requested worker count; ``None`` consults
            ``REPRO_N_JOBS``. ``0`` means "all cores" (matching the CLI
            ``--jobs`` contract).

    Returns:
        A worker count >= 1.

    Raises:
        ConfigurationError: on a negative count or a ``REPRO_N_JOBS``
            value that does not parse as an integer — both are operator
            mistakes that should fail loudly instead of silently
            changing the fan-out.
    """
    source = "n_jobs"
    if n_jobs is None:
        raw = os.environ.get(N_JOBS_ENV, "").strip()
        if not raw:
            return 1
        try:
            n_jobs = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{N_JOBS_ENV} must be an integer, got {raw!r}"
            )
        source = N_JOBS_ENV
    n_jobs = int(n_jobs)
    if n_jobs == 0:
        return os.cpu_count() or 1
    if n_jobs < 0:
        raise ConfigurationError(
            f"{source} must be >= 0 (0 = all cores), got {n_jobs}"
        )
    return n_jobs


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    n_jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Map ``fn`` over ``items``, optionally across worker processes.

    Args:
        fn: a picklable callable (workers re-import it by reference).
        items: the inputs; consumed eagerly.
        n_jobs: worker processes (see :func:`resolve_n_jobs`);
            1 runs serially in-process.
        chunksize: tasks dispatched to a worker per round. Each worker
            process owns a :func:`repro.eval.featurecache.default_cache`
            of its own, so grouping the tasks that share a third-party
            store (e.g. all victims of one grid point) into one chunk
            keeps those tasks on one worker and turns the store-side
            work into cache hits. Purely a scheduling hint — results
            are identical for any value.

    Returns:
        ``[fn(item) for item in items]``, in input order.
    """
    items = list(items)
    n_jobs = resolve_n_jobs(n_jobs)
    if chunksize < 1:
        raise ConfigurationError(f"chunksize must be >= 1, got {chunksize}")
    if n_jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    try:
        with ProcessPoolExecutor(max_workers=min(n_jobs, len(items))) as pool:
            return list(pool.map(fn, items, chunksize=chunksize))
    except _FALLBACK_ERRORS:
        return [fn(item) for item in items]


def run_tasks(
    tasks: Sequence[Callable[[], R]],
    n_jobs: Optional[int] = None,
    chunksize: int = 1,
) -> List[R]:
    """Run a list of zero-argument callables, optionally in parallel.

    A convenience over :func:`parallel_map` for heterogeneous task
    lists (e.g. ``functools.partial`` objects binding different grid
    points): each task must itself be picklable. ``chunksize`` is
    forwarded to :func:`parallel_map`.
    """
    return parallel_map(_call, tasks, n_jobs=n_jobs, chunksize=chunksize)


def _call(task: Callable[[], R]) -> R:
    return task()
