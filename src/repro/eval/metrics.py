"""Evaluation metrics (Section V-B of the paper).

Two headline metrics:

- **authentication accuracy** — the probability that a legitimate
  user's entry is accepted (usability);
- **true rejection rate** — the probability that an attacker's entry
  is rejected (security).

An EER helper over raw scores is included for threshold analyses
beyond the paper's fixed zero threshold.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError


def accuracy(decisions: Sequence[bool]) -> float:
    """Fraction of legitimate attempts accepted."""
    decisions = list(decisions)
    if not decisions:
        raise ConfigurationError("no decisions to score")
    return float(np.mean([bool(d) for d in decisions]))


def true_rejection_rate(decisions: Sequence[bool]) -> float:
    """Fraction of attack attempts rejected.

    Args:
        decisions: the *accepted* flags of attacker attempts.
    """
    decisions = list(decisions)
    if not decisions:
        raise ConfigurationError("no decisions to score")
    return float(np.mean([not bool(d) for d in decisions]))


def equal_error_rate(
    genuine_scores: Sequence[float], impostor_scores: Sequence[float]
) -> float:
    """Equal error rate of a score distribution pair.

    Sweeps the threshold over all observed scores and returns the error
    where the false acceptance and false rejection rates cross.
    """
    genuine = np.asarray(list(genuine_scores), dtype=np.float64)
    impostor = np.asarray(list(impostor_scores), dtype=np.float64)
    if genuine.size == 0 or impostor.size == 0:
        raise ConfigurationError("both score sets must be non-empty")

    thresholds = np.unique(np.concatenate([genuine, impostor]))
    best = 1.0
    for threshold in thresholds:
        frr = float(np.mean(genuine <= threshold))
        far = float(np.mean(impostor > threshold))
        best = min(best, max(frr, far))
    return best
