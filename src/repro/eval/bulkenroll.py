"""Bulk enrollment of simulated populations for registry benchmarks.

Materializing a 10k–1M-user registry by running the full enrollment
pipeline once per user would take days; it would also prove nothing new
about storage, because every enrollment under the same options produces
a template with the same byte footprint. This module splits the work
honestly:

- :func:`enroll_templates` runs the *real* pipeline — synthesis,
  preprocessing, MiniRocket fitting, ridge training — for a handful of
  distinct simulated users, fanned out over the process pool
  (:func:`repro.eval.parallel.parallel_map`), and packs each result.
- :func:`materialize_population` replicates those packed templates
  round-robin under distinct user ids through a packed backend's
  ``store_packed`` fast path, skipping the (per-user identical)
  enrollment compute while exercising the exact storage path every
  record of a real population would take.

Benchmark numbers built on top measure storage and load behavior —
bytes per user, cold-load latency, index scale — which depend only on
the packed record layout, not on whose coefficients fill it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import List, Optional, Protocol

from ..core import EnrollmentOptions, P2Auth
from ..core.packing import PackedAuthenticator, pack_authenticator
from ..data import StudyData, ThirdPartyStore
from ..errors import ConfigurationError
from .parallel import parallel_map


@dataclass(frozen=True)
class TemplateJob:
    """One picklable template-enrollment task.

    Attributes:
        index: template index; perturbs the simulation seed so each
            template belongs to a distinct simulated user.
        num_features: MiniRocket feature budget.
        seed: base simulation seed.
        pin: the PIN every simulated user enrolls with.
        dtype: packing dtype (see :mod:`repro.core.packing`).
        n_study_users: simulated cohort size per job (user 0 enrolls,
            the rest donate third-party negatives).
        n_enroll: enrollment trials for the legitimate user.
        n_negatives: third-party negative samples.
    """

    index: int
    num_features: int = 840
    seed: int = 0
    pin: str = "1628"
    dtype: str = "float32"
    n_study_users: int = 5
    n_enroll: int = 7
    n_negatives: int = 24


def build_template(job: TemplateJob) -> PackedAuthenticator:
    """Enroll one simulated user end-to-end and pack the result.

    Top-level and a pure function of the picklable ``job`` — trials
    regenerate from seeds and the PIN salt derives from the job — so it
    can run in a worker process and parallel runs are byte-identical to
    serial ones.
    """
    study = StudyData(
        n_users=job.n_study_users, seed=job.seed + 101 * job.index
    )
    enroll = study.trials(0, job.pin, "one_handed", job.n_enroll)
    store = ThirdPartyStore(
        study, list(range(1, job.n_study_users)), job.pin
    )
    salt = hashlib.blake2b(
        f"template:{job.seed}:{job.index}".encode("utf-8"), digest_size=16
    ).digest()
    auth = P2Auth(
        pin=job.pin,
        options=EnrollmentOptions(num_features=job.num_features),
        salt=salt,
    )
    auth.enroll(enroll, store.sample(job.n_negatives))
    return pack_authenticator(auth, dtype=job.dtype)


def enroll_templates(
    n_templates: int,
    *,
    num_features: int = 840,
    seed: int = 0,
    pin: str = "1628",
    dtype: str = "float32",
    n_jobs: Optional[int] = None,
) -> List[PackedAuthenticator]:
    """Enroll ``n_templates`` distinct simulated users in parallel.

    Each template runs the full enrollment pipeline for its own
    simulated user (seed-perturbed cohorts), fanned out over the
    process pool. Results come back in template order.
    """
    if n_templates < 1:
        raise ConfigurationError(
            f"n_templates must be >= 1, got {n_templates}"
        )
    base = TemplateJob(
        index=0, num_features=num_features, seed=seed, pin=pin, dtype=dtype
    )
    jobs = [replace(base, index=i) for i in range(n_templates)]
    return parallel_map(build_template, jobs, n_jobs=n_jobs)


class _PackedBackend(Protocol):
    def store_packed(
        self, user_id: str, packed: PackedAuthenticator
    ) -> None: ...


def materialize_population(
    backend: _PackedBackend,
    n_users: int,
    templates: List[PackedAuthenticator],
    *,
    prefix: str = "u",
) -> List[str]:
    """Store ``n_users`` packed records, cycling over ``templates``.

    Requires a backend with the ``store_packed`` fast path
    (:class:`~repro.core.backends.ShardedPackedBackend` or
    :class:`~repro.core.backends.PackedArenaBackend`) — replication
    through full re-packing would bottleneck on serialization instead
    of storage. User ids are ``{prefix}0000000`` … zero-padded to seven
    digits so listings sort numerically.

    Returns:
        The stored user ids, in storage order.
    """
    if n_users < 1:
        raise ConfigurationError(f"n_users must be >= 1, got {n_users}")
    if not templates:
        raise ConfigurationError("templates must be non-empty")
    store_packed = getattr(backend, "store_packed", None)
    if not callable(store_packed):
        raise ConfigurationError(
            f"{type(backend).__name__} has no store_packed; bulk "
            "materialization needs a packed backend (sharded or arena)"
        )
    user_ids: List[str] = []
    for i in range(n_users):
        user_id = f"{prefix}{i:07d}"
        store_packed(user_id, templates[i % len(templates)])
        user_ids.append(user_id)
    return user_ids


__all__ = [
    "TemplateJob",
    "build_template",
    "enroll_templates",
    "materialize_population",
]
