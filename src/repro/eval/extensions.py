"""Extension experiments beyond the paper's evaluation.

The paper leaves three natural questions open; each gets a runner in
the same :class:`~repro.eval.experiments.ExperimentResult` format:

- **Template aging** (`run_aging_sweep`) — the study spanned 8 weeks
  and found PPG patterns stable; how fast does accuracy decay once the
  physiology drifts systematically away from the enrolled template?
- **Enrollment size** (`run_enrollment_size_sweep`) — the paper caps
  enrollment at 9 entries for usability; what does each entry buy?
- **Threshold analysis** (`run_eer_analysis`) — the paper uses the
  ridge classifier's natural zero threshold; the EER characterizes the
  whole genuine/impostor score geometry.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..config import PAPER_PINS, PipelineConfig
from ..core import P2Auth, EnrollmentOptions, preprocess_trial
from ..core.enrollment import extract_full_waveform, WaveformModel
from ..data import StudyData, ThirdPartyStore
from .experiments import DEFAULT, ExperimentResult, ExperimentScale, _study
from .metrics import equal_error_rate
from .protocol import evaluate_user


def run_aging_sweep(
    scale: ExperimentScale = DEFAULT,
    ages: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
) -> ExperimentResult:
    """Authentication accuracy against systematically aged templates.

    Users enroll at age 0; probes are synthesized with increasing
    template drift. Security is also tracked: the emulating attacker
    stays un-aged (they observe the victim *now*).
    """
    data = _study(scale)
    config = PipelineConfig()
    pin = PAPER_PINS[0]
    synth = data.synthesizer

    rows = []
    summary: Dict[str, float] = {}
    for age in ages:
        accs: List[float] = []
        for victim_id in scale.victim_ids:
            contributors = [
                u
                for u in range(scale.n_users)
                if u != victim_id and u not in scale.attacker_ids
            ]
            store = ThirdPartyStore(data, contributors, pin)
            auth = P2Auth(
                pin=pin,
                options=EnrollmentOptions(num_features=scale.num_features),
            )
            auth.enroll(
                data.trials(victim_id, pin, "one_handed", scale.enroll_n),
                store.sample(scale.third_party_n),
            )
            user = data.user(victim_id)
            accepted = []
            for rep in range(scale.test_n):
                rng = np.random.default_rng(900_000 + victim_id * 1000 + rep)
                probe = synth.synthesize_trial(
                    user, pin, rng, aging=age
                )
                accepted.append(auth.authenticate(probe).accepted)
            accs.append(float(np.mean(accepted)))
        accuracy = float(np.mean(accs))
        rows.append((age, accuracy))
        summary[f"acc_age_{age:g}"] = accuracy
    return ExperimentResult(
        experiment="ext-aging",
        title="Extension — accuracy vs template aging",
        headers=("aging", "accuracy"),
        rows=tuple(rows),
        summary=summary,
    )


def run_enrollment_size_sweep(
    scale: ExperimentScale = DEFAULT,
    sizes: Sequence[int] = (3, 5, 7, 9, 12),
) -> ExperimentResult:
    """Accuracy and TRR as a function of the enrollment entry count."""
    data = _study(scale)
    rows = []
    summary: Dict[str, float] = {}
    for size in sizes:
        results = [
            evaluate_user(
                data,
                victim,
                attacker_ids=scale.attacker_ids,
                enroll_n=size,
                test_n=scale.test_n,
                third_party_n=scale.third_party_n,
                ra_per_attacker=scale.ra_per_attacker,
                ea_per_attacker=scale.ea_per_attacker,
                num_features=scale.num_features,
            )
            for victim in scale.victim_ids
        ]
        acc = float(np.mean([r.accuracy for r in results]))
        trr = float(
            np.mean([(r.trr_random + r.trr_emulating) / 2 for r in results])
        )
        rows.append((size, acc, trr))
        summary[f"acc_{size}"] = acc
        summary[f"trr_{size}"] = trr
    return ExperimentResult(
        experiment="ext-enroll",
        title="Extension — performance vs enrollment size",
        headers=("enrollment entries", "accuracy", "trr"),
        rows=tuple(rows),
        summary=summary,
    )


def run_eer_analysis(scale: ExperimentScale = DEFAULT) -> ExperimentResult:
    """Equal error rate of the full-waveform score distributions.

    Pools genuine scores (held-out legitimate entries) and impostor
    scores (emulating attacks) over all victims, reporting the EER and
    the zero-threshold operating point the paper uses.
    """
    data = _study(scale)
    config = PipelineConfig()
    pin = PAPER_PINS[0]

    genuine: List[float] = []
    impostor: List[float] = []
    for victim_id in scale.victim_ids:
        contributors = [
            u
            for u in range(scale.n_users)
            if u != victim_id and u not in scale.attacker_ids
        ]
        store = ThirdPartyStore(data, contributors, pin)
        trials = data.trials(
            victim_id, pin, "one_handed", scale.enroll_n + scale.test_n
        )
        enroll, test = trials[: scale.enroll_n], trials[scale.enroll_n :]

        positives = np.stack(
            [extract_full_waveform(preprocess_trial(t, config)) for t in enroll]
        )
        negatives = np.stack(
            [
                extract_full_waveform(preprocess_trial(t, config))
                for t in store.sample(scale.third_party_n)
            ]
        )
        model = WaveformModel(num_features=scale.num_features).fit(
            positives, negatives
        )
        genuine.extend(
            float(s)
            for s in model.decision_function(
                np.stack(
                    [extract_full_waveform(preprocess_trial(t, config)) for t in test]
                )
            )
        )
        for attacker in scale.attacker_ids:
            attacks = data.emulating_trials(
                attacker, victim_id, pin, scale.ea_per_attacker
            )
            impostor.extend(
                float(s)
                for s in model.decision_function(
                    np.stack(
                        [
                            extract_full_waveform(preprocess_trial(t, config))
                            for t in attacks
                        ]
                    )
                )
            )

    eer = equal_error_rate(genuine, impostor)
    frr_zero = float(np.mean(np.asarray(genuine) <= 0.0))
    far_zero = float(np.mean(np.asarray(impostor) > 0.0))
    rows = (
        ("equal error rate", eer),
        ("FRR at zero threshold", frr_zero),
        ("FAR at zero threshold", far_zero),
        ("genuine score mean", float(np.mean(genuine))),
        ("impostor score mean", float(np.mean(impostor))),
    )
    return ExperimentResult(
        experiment="ext-eer",
        title="Extension — score-threshold analysis (full-waveform model)",
        headers=("quantity", "value"),
        rows=rows,
        summary={"eer": eer, "frr_zero": frr_zero, "far_zero": far_zero},
    )


#: Extension runners, keyed like the paper runners.
EXTENSION_RUNNERS = {
    "ext-aging": run_aging_sweep,
    "ext-enroll": run_enrollment_size_sweep,
    "ext-eer": run_eer_analysis,
}
