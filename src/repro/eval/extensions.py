"""Extension experiments beyond the paper's evaluation.

The paper leaves three natural questions open; each gets a runner in
the same :class:`~repro.eval.experiments.ExperimentResult` format:

- **Template aging** (`run_aging_sweep`) — the study spanned 8 weeks
  and found PPG patterns stable; how fast does accuracy decay once the
  physiology drifts systematically away from the enrolled template?
- **Enrollment size** (`run_enrollment_size_sweep`) — the paper caps
  enrollment at 9 entries for usability; what does each entry buy?
- **Threshold analysis** (`run_eer_analysis`) — the paper uses the
  ridge classifier's natural zero threshold; the EER characterizes the
  whole genuine/impostor score geometry.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PAPER_PINS, PipelineConfig
from ..core import P2Auth, EnrollmentOptions, preprocess_trial
from ..core.enrollment import extract_full_waveform, WaveformModel
from ..data import StudyData, ThirdPartyStore
from .experiments import DEFAULT, ExperimentResult, ExperimentScale, _study
from .metrics import equal_error_rate
from .parallel import run_tasks
from .protocol import evaluate_user


def _aging_case(
    data: StudyData,
    scale: ExperimentScale,
    pin: str,
    age: float,
    victim_id: int,
) -> float:
    """Accuracy of one victim against probes aged by ``age``.

    Module-level (not a closure) so aging tasks pickle for the
    process pool.
    """
    synth = data.synthesizer
    contributors = [
        u
        for u in range(scale.n_users)
        if u != victim_id and u not in scale.attacker_ids
    ]
    store = ThirdPartyStore(data, contributors, pin)
    auth = P2Auth(
        pin=pin,
        options=EnrollmentOptions(num_features=scale.num_features),
    )
    auth.enroll(
        data.trials(victim_id, pin, "one_handed", scale.enroll_n),
        store.sample(scale.third_party_n),
    )
    user = data.user(victim_id)
    accepted = []
    for rep in range(scale.test_n):
        rng = np.random.default_rng(900_000 + victim_id * 1000 + rep)
        probe = synth.synthesize_trial(user, pin, rng, aging=age)
        accepted.append(auth.authenticate(probe).accepted)
    return float(np.mean(accepted))


def run_aging_sweep(
    scale: ExperimentScale = DEFAULT,
    ages: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0),
    *,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """Authentication accuracy against systematically aged templates.

    Users enroll at age 0; probes are synthesized with increasing
    template drift. Security is also tracked: the emulating attacker
    stays un-aged (they observe the victim *now*). The age x victim
    grid fans out over one process pool when ``n_jobs`` > 1.
    """
    data = _study(scale)
    pin = PAPER_PINS[0]
    victims = list(scale.victim_ids)

    tasks = [
        partial(_aging_case, data, scale, pin, age, victim_id)
        for age in ages
        for victim_id in victims
    ]
    flat = run_tasks(tasks, n_jobs=n_jobs)

    rows = []
    summary: Dict[str, float] = {}
    for i, age in enumerate(ages):
        accs = flat[i * len(victims) : (i + 1) * len(victims)]
        accuracy = float(np.mean(accs))
        rows.append((age, accuracy))
        summary[f"acc_age_{age:g}"] = accuracy
    return ExperimentResult(
        experiment="ext-aging",
        title="Extension — accuracy vs template aging",
        headers=("aging", "accuracy"),
        rows=tuple(rows),
        summary=summary,
    )


def run_enrollment_size_sweep(
    scale: ExperimentScale = DEFAULT,
    sizes: Sequence[int] = (3, 5, 7, 9, 12),
    *,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """Accuracy and TRR as a function of the enrollment entry count.

    The size x victim grid flattens into one task pool under
    ``n_jobs``.
    """
    data = _study(scale)
    victims = list(scale.victim_ids)
    tasks = [
        partial(
            evaluate_user,
            data,
            victim,
            attacker_ids=scale.attacker_ids,
            enroll_n=size,
            test_n=scale.test_n,
            third_party_n=scale.third_party_n,
            ra_per_attacker=scale.ra_per_attacker,
            ea_per_attacker=scale.ea_per_attacker,
            num_features=scale.num_features,
        )
        for size in sizes
        for victim in victims
    ]
    flat = run_tasks(tasks, n_jobs=n_jobs)
    rows = []
    summary: Dict[str, float] = {}
    for i, size in enumerate(sizes):
        results = flat[i * len(victims) : (i + 1) * len(victims)]
        acc = float(np.mean([r.accuracy for r in results]))
        trr = float(
            np.mean([(r.trr_random + r.trr_emulating) / 2 for r in results])
        )
        rows.append((size, acc, trr))
        summary[f"acc_{size}"] = acc
        summary[f"trr_{size}"] = trr
    return ExperimentResult(
        experiment="ext-enroll",
        title="Extension — performance vs enrollment size",
        headers=("enrollment entries", "accuracy", "trr"),
        rows=tuple(rows),
        summary=summary,
    )


def _eer_scores(
    data: StudyData, scale: ExperimentScale, pin: str, victim_id: int
) -> Tuple[List[float], List[float]]:
    """Genuine and impostor score lists for one victim's waveform model.

    Module-level so EER tasks pickle for the process pool.
    """
    config = PipelineConfig()
    contributors = [
        u
        for u in range(scale.n_users)
        if u != victim_id and u not in scale.attacker_ids
    ]
    store = ThirdPartyStore(data, contributors, pin)
    trials = data.trials(
        victim_id, pin, "one_handed", scale.enroll_n + scale.test_n
    )
    enroll, test = trials[: scale.enroll_n], trials[scale.enroll_n :]

    positives = np.stack(
        [extract_full_waveform(preprocess_trial(t, config)) for t in enroll]
    )
    negatives = np.stack(
        [
            extract_full_waveform(preprocess_trial(t, config))
            for t in store.sample(scale.third_party_n)
        ]
    )
    model = WaveformModel(num_features=scale.num_features).fit(
        positives, negatives
    )
    genuine = [
        float(s)
        for s in model.decision_function(
            np.stack(
                [extract_full_waveform(preprocess_trial(t, config)) for t in test]
            )
        )
    ]
    impostor: List[float] = []
    for attacker in scale.attacker_ids:
        attacks = data.emulating_trials(
            attacker, victim_id, pin, scale.ea_per_attacker
        )
        impostor.extend(
            float(s)
            for s in model.decision_function(
                np.stack(
                    [
                        extract_full_waveform(preprocess_trial(t, config))
                        for t in attacks
                    ]
                )
            )
        )
    return genuine, impostor


def run_eer_analysis(
    scale: ExperimentScale = DEFAULT, *, n_jobs: Optional[int] = None
) -> ExperimentResult:
    """Equal error rate of the full-waveform score distributions.

    Pools genuine scores (held-out legitimate entries) and impostor
    scores (emulating attacks) over all victims, reporting the EER and
    the zero-threshold operating point the paper uses. Victims fan out
    over a process pool when ``n_jobs`` > 1.
    """
    data = _study(scale)
    pin = PAPER_PINS[0]

    tasks = [
        partial(_eer_scores, data, scale, pin, victim_id)
        for victim_id in scale.victim_ids
    ]
    genuine: List[float] = []
    impostor: List[float] = []
    for g, i in run_tasks(tasks, n_jobs=n_jobs):
        genuine.extend(g)
        impostor.extend(i)

    eer = equal_error_rate(genuine, impostor)
    frr_zero = float(np.mean(np.asarray(genuine) <= 0.0))
    far_zero = float(np.mean(np.asarray(impostor) > 0.0))
    rows = (
        ("equal error rate", eer),
        ("FRR at zero threshold", frr_zero),
        ("FAR at zero threshold", far_zero),
        ("genuine score mean", float(np.mean(genuine))),
        ("impostor score mean", float(np.mean(impostor))),
    )
    return ExperimentResult(
        experiment="ext-eer",
        title="Extension — score-threshold analysis (full-waveform model)",
        headers=("quantity", "value"),
        rows=rows,
        summary={"eer": eer, "frr_zero": frr_zero, "far_zero": far_zero},
    )


#: Extension runners, keyed like the paper runners.
EXTENSION_RUNNERS = {  # concurrency: immutable-after-init
    "ext-aging": run_aging_sweep,
    "ext-enroll": run_enrollment_size_sweep,
    "ext-eer": run_eer_analysis,
}
