"""Robustness evaluation: the pipeline under injected faults.

The Section V protocol measures P2Auth on clean signals. This harness
asks the deployment question instead: *what happens when the input is
damaged?* It sweeps a grid of fault type × intensity × victim (faults
from :mod:`repro.faults`, applied to probe trials only — enrollment
stays clean, as registration happens under supervision), and reports
three numbers per cell:

- **FRR** — false rejection rate on the victim's own (faulted) entries,
  counting quality refusals as rejections: from the user's point of
  view a re-prompt is a failure to get in.
- **FAR** — false acceptance rate over random + emulating attacks under
  the same fault. The never-accept invariant demands this stays at the
  clean baseline or below: damage may cost usability, never security.
- **quality-rejection rate** — the fraction of all probes the
  degradation ladder refused to decide on (typed
  :class:`~repro.errors.QualityError` / other pipeline errors), as
  opposed to scoring and rejecting.

A *recovery* comparison runs one fault class under three policies —
no policy, gate-only, and the full ladder — to show the ladder turning
refusals/errors into decisions (ISSUE acceptance: a single dead channel
must recover to a decision, never to an acceptance of garbage).

Determinism: every probe's fault draws from
:func:`repro.faults.fault_rng` keyed on (sweep seed, fault, intensity,
probe kind, victim, index), so a parallel sweep (PR-1 process pool)
produces exactly the rows of a serial one. The sweep seed resolves
explicit value → ``REPRO_FAULT_SEED`` → 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import PAPER_PINS
from ..core import DegradationPolicy, EnrollmentOptions, P2Auth
from ..core.enrollment import SHAREABLE_FEATURE_METHODS
from ..data import StudyData, ThirdPartyStore, enroll_test_split
from ..errors import ConfigurationError, P2AuthError, QualityError
from ..faults import FAULT_TYPES, fault_rng, make_fault, resolve_fault_seed
from ..types import PinEntryTrial
from .featurecache import default_cache, sharing_enabled
from .parallel import run_tasks

#: Default intensity grid of a full sweep.
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)

#: CI smoke subset: two representative fault classes at the extremes.
SMOKE_FAULTS: Tuple[str, ...] = ("channel_dropout", "sample_dropout")
SMOKE_INTENSITIES: Tuple[float, ...] = (0.0, 1.0)

#: Policies compared by the recovery analysis.
RECOVERY_MODES: Tuple[str, ...] = ("none", "gate_only", "full")


@dataclass(frozen=True)
class ProbeCounts:
    """Outcome tally over one set of probes.

    Attributes:
        accepted: probes the authenticator accepted.
        rejected: probes scored and rejected (a biometric decision).
        quality_refused: probes the ladder refused via
            :class:`~repro.errors.QualityError` (no decision made).
        errors: probes that raised any other typed pipeline error
            (still never an acceptance).
    """

    accepted: int = 0
    rejected: int = 0
    quality_refused: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        """Number of probes tallied."""
        return self.accepted + self.rejected + self.quality_refused + self.errors

    @property
    def decided(self) -> int:
        """Probes that reached a biometric decision (accept or reject)."""
        return self.accepted + self.rejected

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "quality_refused": self.quality_refused,
            "errors": self.errors,
        }


@dataclass(frozen=True)
class RobustnessCell:
    """One grid cell: a fault at an intensity against one victim.

    Attributes:
        fault: fault name from :data:`repro.faults.FAULT_TYPES`.
        intensity: the fault's severity knob.
        victim_id: the enrolled victim probed.
        legit: outcomes over the victim's own faulted entries.
        attack: outcomes over faulted random + emulating attacks.
    """

    fault: str
    intensity: float
    victim_id: int
    legit: ProbeCounts
    attack: ProbeCounts

    @property
    def frr(self) -> float:
        """False rejection rate: legit probes that did not get in."""
        if self.legit.total == 0:
            return float("nan")
        return 1.0 - self.legit.accepted / self.legit.total

    @property
    def far(self) -> float:
        """False acceptance rate over the faulted attack probes."""
        if self.attack.total == 0:
            return float("nan")
        return self.attack.accepted / self.attack.total

    @property
    def quality_rejection_rate(self) -> float:
        """Fraction of all probes refused without a decision."""
        total = self.legit.total + self.attack.total
        if total == 0:
            return float("nan")
        refused = (
            self.legit.quality_refused
            + self.legit.errors
            + self.attack.quality_refused
            + self.attack.errors
        )
        return refused / total


def _probe(
    auth: P2Auth,
    trials: Sequence[PinEntryTrial],
    fault_name: str,
    intensity: float,
    kind: str,
    victim_id: int,
    seed: int,
) -> ProbeCounts:
    """Fault and authenticate each trial, tallying the outcomes."""
    fault = make_fault(fault_name, intensity)
    accepted = rejected = quality = errors = 0
    for index, trial in enumerate(trials):
        rng = fault_rng(seed, fault_name, intensity, kind, victim_id, index)
        faulted = fault.apply(trial, rng)
        try:
            decision = auth.authenticate(faulted)
        except QualityError:
            quality += 1
            continue
        except P2AuthError:
            errors += 1
            continue
        except (ValueError, FloatingPointError):
            # Without a degradation policy, NaN-poisoned input crashes
            # deep in scipy/numpy with untyped errors — the behaviour
            # the ladder exists to replace. Tally it as an error so the
            # recovery comparison can show the contrast.
            errors += 1
            continue
        if decision.accepted:
            accepted += 1
        else:
            rejected += 1
    return ProbeCounts(
        accepted=accepted,
        rejected=rejected,
        quality_refused=quality,
        errors=errors,
    )


def _enroll_victim(
    data: StudyData,
    victim_id: int,
    pin: str,
    attacker_ids: Sequence[int],
    enroll_n: int,
    test_n: int,
    third_party_n: int,
    num_features: int,
    policy: Optional[DegradationPolicy],
) -> Tuple[P2Auth, List[PinEntryTrial]]:
    """Enroll one victim on clean trials; return the auth and test set.

    Mirrors the clean-protocol split of
    :func:`repro.eval.protocol.evaluate_user` (one-handed enrollment,
    shared third-party negatives through the process-wide cache).
    """
    attacker_ids = list(attacker_ids)
    if victim_id in attacker_ids:
        raise ConfigurationError("the victim cannot attack themselves")
    contributor_ids = [
        uid
        for uid in range(data.n_users)
        if uid != victim_id and uid not in attacker_ids
    ]
    if not contributor_ids:
        raise ConfigurationError("no users left to populate the third-party store")

    pool = data.trials(victim_id, pin, "one_handed", enroll_n + test_n)
    enroll_trials, test_trials = enroll_test_split(pool, enroll_n)
    store = ThirdPartyStore(data, contributor_ids, pin, "one_handed")
    third_party = store.sample(third_party_n)

    options = EnrollmentOptions(num_features=num_features)
    auth = P2Auth(pin=pin, options=options, policy=policy)
    bank = None
    if sharing_enabled(None) and options.feature_method in SHAREABLE_FEATURE_METHODS:
        bank = default_cache().negative_bank(third_party, auth.config, options)
    auth.enroll(enroll_trials, third_party, shared_negatives=bank)
    return auth, list(test_trials)


def evaluate_robustness_cell(
    data: StudyData,
    fault_name: str,
    intensity: float,
    victim_id: int,
    pin: str = PAPER_PINS[0],
    *,
    attacker_ids: Sequence[int] = (),
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    ra_per_attacker: int = 5,
    ea_per_attacker: int = 5,
    num_features: int = 9996,
    seed: int = 0,
    policy: Optional[DegradationPolicy] = None,
) -> RobustnessCell:
    """Evaluate one grid cell.

    Enrollment is clean; the fault hits probe trials only. ``policy``
    defaults to the full degradation ladder (pass an explicit policy —
    or ``None`` via :func:`evaluate_recovery` — to change that).
    """
    if fault_name not in FAULT_TYPES:
        raise ConfigurationError(
            f"unknown fault {fault_name!r}; known: {sorted(FAULT_TYPES)}"
        )
    if policy is None:
        policy = DegradationPolicy()
    auth, test_trials = _enroll_victim(
        data, victim_id, pin, attacker_ids, enroll_n, test_n,
        third_party_n, num_features, policy,
    )

    legit = _probe(
        auth, test_trials, fault_name, intensity, "legit", victim_id, seed
    )

    attack_trials: List[PinEntryTrial] = []
    for attacker_id in attacker_ids:
        attack_trials.extend(
            data.random_attack_trials(
                attacker_id, ra_per_attacker, pin_pool=PAPER_PINS
            )
        )
        attack_trials.extend(
            data.emulating_trials(attacker_id, victim_id, pin, ea_per_attacker)
        )
    attack = _probe(
        auth, attack_trials, fault_name, intensity, "attack", victim_id, seed
    )

    return RobustnessCell(
        fault=fault_name,
        intensity=float(intensity),
        victim_id=victim_id,
        legit=legit,
        attack=attack,
    )


def run_robustness_sweep(
    data: StudyData,
    faults: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    victim_ids: Sequence[int] = (0,),
    *,
    n_jobs: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> List[RobustnessCell]:
    """Sweep the fault × intensity × victim grid.

    Args:
        data: the study dataset.
        faults: fault names; defaults to every registered fault,
            alphabetically.
        intensities: the severity grid.
        victim_ids: victims evaluated per grid point.
        n_jobs: process-pool fan-out (see :mod:`repro.eval.parallel`);
            rows are identical to a serial run.
        seed: sweep fault seed; ``None`` resolves ``REPRO_FAULT_SEED``
            then 0.
        **kwargs: forwarded to :func:`evaluate_robustness_cell`.

    Returns:
        Cells in (victim, fault, intensity) order — victims outermost so
        a chunked pool keeps one victim's shared negatives on one worker.
    """
    fault_names = (
        tuple(faults) if faults is not None else tuple(sorted(FAULT_TYPES))
    )
    resolved_seed = resolve_fault_seed(seed)
    tasks = [
        partial(
            evaluate_robustness_cell, data, fault_name, intensity, victim_id,
            seed=resolved_seed, **kwargs,
        )
        for victim_id in victim_ids
        for fault_name in fault_names
        for intensity in intensities
    ]
    per_victim = max(1, len(fault_names) * len(intensities))
    return run_tasks(tasks, n_jobs=n_jobs, chunksize=per_victim)


def _recovery_policy(mode: str) -> Optional[DegradationPolicy]:
    """The degradation policy behind a recovery-comparison mode."""
    if mode == "none":
        return None
    if mode == "gate_only":
        return DegradationPolicy(repair_gaps=False, channel_fallback=False)
    if mode == "full":
        return DegradationPolicy()
    raise ConfigurationError(
        f"unknown recovery mode {mode!r}; known: {list(RECOVERY_MODES)}"
    )


def evaluate_recovery(
    data: StudyData,
    fault_name: str = "channel_dropout",
    intensity: float = 1.0,
    victim_id: int = 0,
    pin: str = PAPER_PINS[0],
    *,
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    num_features: int = 9996,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Compare the degradation ladder against weaker policies.

    Runs the victim's own entries under one fault through three
    authenticators — no policy, quality gate only, and the full ladder —
    and tallies outcomes per mode. The acceptance claim: the full
    ladder converts refusals/errors into *decisions* (and recovers
    genuine acceptances) without ever accepting what the weaker modes
    refused as corrupt.
    """
    out: Dict[str, Dict[str, int]] = {}
    for mode in RECOVERY_MODES:
        auth, test_trials = _enroll_victim(
            data, victim_id, pin, (), enroll_n, test_n,
            third_party_n, num_features, _recovery_policy(mode),
        )
        counts = _probe(
            auth, test_trials, fault_name, intensity, "legit", victim_id, seed
        )
        out[mode] = counts.as_dict()
    return out


def _aggregate(
    cells: Sequence[RobustnessCell],
) -> List[Dict[str, Any]]:
    """Collapse per-victim cells into per-(fault, intensity) rows."""
    grouped: Dict[Tuple[str, float], List[RobustnessCell]] = {}
    for cell in cells:
        grouped.setdefault((cell.fault, cell.intensity), []).append(cell)
    rows: List[Dict[str, Any]] = []
    for (fault, intensity) in sorted(grouped):
        members = grouped[(fault, intensity)]
        legit = ProbeCounts(
            accepted=sum(c.legit.accepted for c in members),
            rejected=sum(c.legit.rejected for c in members),
            quality_refused=sum(c.legit.quality_refused for c in members),
            errors=sum(c.legit.errors for c in members),
        )
        attack = ProbeCounts(
            accepted=sum(c.attack.accepted for c in members),
            rejected=sum(c.attack.rejected for c in members),
            quality_refused=sum(c.attack.quality_refused for c in members),
            errors=sum(c.attack.errors for c in members),
        )
        pooled = RobustnessCell(
            fault=fault, intensity=intensity, victim_id=-1,
            legit=legit, attack=attack,
        )
        rows.append(
            {
                "fault": fault,
                "intensity": intensity,
                "frr": round(pooled.frr, 4),
                "far": round(pooled.far, 4),
                "quality_rejection_rate": round(
                    pooled.quality_rejection_rate, 4
                ),
                "legit": legit.as_dict(),
                "attack": attack.as_dict(),
                "n_victims": len(members),
            }
        )
    return rows


def build_report(
    cells: Sequence[RobustnessCell],
    recovery: Optional[Mapping[str, Mapping[str, int]]] = None,
    *,
    seed: int = 0,
    label: str = "default",
) -> Dict[str, Any]:
    """Assemble the JSON-serialisable robustness report.

    Deliberately timestamp-free: regenerating with the same seed and
    grid produces a byte-identical ``ROBUSTNESS.json``.
    """
    rows = _aggregate(cells)
    # The security invariant is relative, not absolute: emulating
    # attackers occasionally beat the clean biometric (the paper's TRR
    # is below 100%), so the clean intensity-0 column sets each fault's
    # FAR baseline — damage may never push FAR above it.
    baselines: Dict[str, float] = {
        r["fault"]: r["far"]
        for r in rows
        # reprolint: disable-next=RL005 -- exact no-op grid coordinate
        if r["intensity"] == 0.0
    }
    excess = [
        r["far"] - baselines[r["fault"]]
        for r in rows
        if r["fault"] in baselines
    ]
    report: Dict[str, Any] = {
        "meta": {
            "label": label,
            "seed": seed,
            "faults": sorted({c.fault for c in cells}),
            "intensities": sorted({c.intensity for c in cells}),
            "victims": sorted({c.victim_id for c in cells}),
        },
        "grid": rows,
        "invariants": {
            "max_far": max((r["far"] for r in rows), default=float("nan")),
            "baseline_far": baselines,
            "max_excess_far": round(max(excess), 4) if excess else None,
            "faults_never_increase_far": (
                all(e <= 0 for e in excess) if excess else None
            ),
        },
    }
    if recovery is not None:
        report["recovery"] = {
            "fault": "channel_dropout",
            "intensity": 1.0,
            "modes": {mode: dict(counts) for mode, counts in recovery.items()},
        }
    return report


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render a report as the committed ``ROBUSTNESS.md`` table."""
    lines = [
        "# Robustness sweep",
        "",
        f"Label: `{report['meta']['label']}`, fault seed "
        f"{report['meta']['seed']}. Enrollment is clean; faults hit probe "
        "trials only. FRR counts quality refusals as rejections; the "
        "quality-rejection rate is the fraction of all probes refused "
        "without a biometric decision.",
        "",
        "| fault | intensity | FRR | FAR | quality-rejection rate |",
        "|---|---|---|---|---|",
    ]
    for row in report["grid"]:
        lines.append(
            f"| {row['fault']} | {row['intensity']:.2f} | "
            f"{row['frr']:.3f} | {row['far']:.3f} | "
            f"{row['quality_rejection_rate']:.3f} |"
        )
    recovery = report.get("recovery")
    if recovery:
        lines.extend(
            [
                "",
                "## Degradation-ladder recovery",
                "",
                f"Fault `{recovery['fault']}` at intensity "
                f"{recovery['intensity']:.2f}, victim's own entries, by "
                "policy:",
                "",
                "| policy | accepted | rejected | quality refused | errors |",
                "|---|---|---|---|---|",
            ]
        )
        for mode in RECOVERY_MODES:
            counts = recovery["modes"].get(mode)
            if counts is None:
                continue
            lines.append(
                f"| {mode} | {counts['accepted']} | {counts['rejected']} | "
                f"{counts['quality_refused']} | {counts['errors']} |"
            )
    never = report["invariants"]["faults_never_increase_far"]
    if never is None:
        verdict = "not checkable (no intensity-0 baseline in the grid)"
    elif never:
        verdict = "**holds** — no fault raised FAR above its clean baseline"
    else:
        verdict = "**VIOLATED**"
    lines.extend(
        [
            "",
            f"Security invariant: {verdict} "
            f"(max FAR {report['invariants']['max_far']:.3f}, max excess "
            f"over baseline "
            + (
                f"{report['invariants']['max_excess_far']:+.3f}"
                if report["invariants"]["max_excess_far"] is not None
                else "n/a"
            )
            + ").",
            "",
        ]
    )
    return "\n".join(lines)
