"""Robustness evaluation: the pipeline under injected faults.

The Section V protocol measures P2Auth on clean signals. This harness
asks the deployment question instead: *what happens when the input is
damaged?* It sweeps a grid of fault type × intensity × victim (faults
from :mod:`repro.faults`, applied to probe trials only — enrollment
stays clean, as registration happens under supervision), and reports
three numbers per cell:

- **FRR** — false rejection rate on the victim's own (faulted) entries,
  counting quality refusals as rejections: from the user's point of
  view a re-prompt is a failure to get in.
- **FAR** — false acceptance rate over random + emulating attacks under
  the same fault. The never-accept invariant demands this stays at the
  clean baseline or below: damage may cost usability, never security.
- **quality-rejection rate** — the fraction of all probes the
  degradation ladder refused to decide on (typed
  :class:`~repro.errors.QualityError` / other pipeline errors), as
  opposed to scoring and rejecting.

A *recovery* comparison runs one fault class under three policies —
no policy, gate-only, and the full ladder — to show the ladder turning
refusals/errors into decisions (ISSUE acceptance: a single dead channel
must recover to a decision, never to an acceptance of garbage).

Determinism: every probe's fault draws from
:func:`repro.faults.fault_rng` keyed on (sweep seed, fault, intensity,
probe kind, victim, index), so a parallel sweep (PR-1 process pool)
produces exactly the rows of a serial one. The sweep seed resolves
explicit value → ``REPRO_FAULT_SEED`` → 0.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import PAPER_PINS
from ..core import DegradationPolicy, EnrollmentOptions, P2Auth
from ..core.enrollment import SHAREABLE_FEATURE_METHODS
from ..data import StudyData, ThirdPartyStore, enroll_test_split
from ..errors import ConfigurationError, P2AuthError, QualityError
from ..faults import (
    FAULT_TYPES,
    SCENARIO_TYPES,
    FaultInjector,
    fault_rng,
    make_fault,
    make_scenario,
    resolve_fault_seed,
)
from ..types import PinEntryTrial
from .featurecache import default_cache, sharing_enabled
from .parallel import run_tasks

#: Default intensity grid of a full sweep.
DEFAULT_INTENSITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 1.0)

#: CI smoke subset: two representative fault classes at the extremes.
SMOKE_FAULTS: Tuple[str, ...] = ("channel_dropout", "sample_dropout")
SMOKE_INTENSITIES: Tuple[float, ...] = (0.0, 1.0)

#: Policies compared by the recovery analysis.
RECOVERY_MODES: Tuple[str, ...] = ("none", "gate_only", "full")

#: Template-aging grid of a full scenario sweep, in days. Deliberately
#: offset from the 28-day re-enrollment period so ``periodic_reenroll``
#: is evaluated mid-cycle (a grid of multiples of the period would hand
#: it a freshly re-enrolled, age-0 template at every point).
DEFAULT_AGE_GRID: Tuple[float, ...] = (0.0, 30.0, 60.0, 120.0)

#: CI smoke subsets for the scenario sweep: one motion state, the
#: cross-device transfer, and the two age extremes.
SMOKE_SCENARIOS: Tuple[str, ...] = ("typing_while_walking", "cross_device")
SMOKE_AGE_GRID: Tuple[float, ...] = (0.0, 120.0)

#: Template-maintenance policies compared by the mitigation sweep.
MITIGATION_POLICIES: Tuple[str, ...] = (
    "frozen",
    "periodic_reenroll",
    "sliding_update",
)

#: ``periodic_reenroll`` refreshes the template every this many days.
REENROLL_PERIOD_DAYS: float = 28.0

#: ``sliding_update`` keeps the template this many days behind the user.
SLIDING_LAG_DAYS: float = 7.0


@dataclass(frozen=True)
class ProbeCounts:
    """Outcome tally over one set of probes.

    Attributes:
        accepted: probes the authenticator accepted.
        rejected: probes scored and rejected (a biometric decision).
        quality_refused: probes the ladder refused via
            :class:`~repro.errors.QualityError` (no decision made).
        errors: probes that raised any other typed pipeline error
            (still never an acceptance).
    """

    accepted: int = 0
    rejected: int = 0
    quality_refused: int = 0
    errors: int = 0

    @property
    def total(self) -> int:
        """Number of probes tallied."""
        return self.accepted + self.rejected + self.quality_refused + self.errors

    @property
    def decided(self) -> int:
        """Probes that reached a biometric decision (accept or reject)."""
        return self.accepted + self.rejected

    def as_dict(self) -> Dict[str, int]:
        """Plain-dict form for JSON reports."""
        return {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "quality_refused": self.quality_refused,
            "errors": self.errors,
        }


class _CellRates:
    """Rate properties shared by every sweep cell (has legit/attack)."""

    legit: ProbeCounts
    attack: ProbeCounts

    @property
    def frr(self) -> float:
        """False rejection rate: legit probes that did not get in."""
        if self.legit.total == 0:
            return float("nan")
        return 1.0 - self.legit.accepted / self.legit.total

    @property
    def far(self) -> float:
        """False acceptance rate over the faulted attack probes."""
        if self.attack.total == 0:
            return float("nan")
        return self.attack.accepted / self.attack.total

    @property
    def quality_rejection_rate(self) -> float:
        """Fraction of all probes refused without a decision."""
        total = self.legit.total + self.attack.total
        if total == 0:
            return float("nan")
        refused = (
            self.legit.quality_refused
            + self.legit.errors
            + self.attack.quality_refused
            + self.attack.errors
        )
        return refused / total


@dataclass(frozen=True)
class RobustnessCell(_CellRates):
    """One grid cell: a fault at an intensity against one victim.

    Attributes:
        fault: fault name from :data:`repro.faults.FAULT_TYPES`.
        intensity: the fault's severity knob.
        victim_id: the enrolled victim probed.
        legit: outcomes over the victim's own faulted entries.
        attack: outcomes over faulted random + emulating attacks.
    """

    fault: str
    intensity: float
    victim_id: int
    legit: ProbeCounts
    attack: ProbeCounts


@dataclass(frozen=True)
class ScenarioCell(_CellRates):
    """One scenario-sweep cell: scenario × intensity × victim × age.

    Attributes:
        scenario: name from :data:`repro.faults.SCENARIO_TYPES`.
        intensity: the scenario's severity knob.
        victim_id: the enrolled victim probed.
        age_days: simulated days since enrollment day 0; probes (legit
            and attack) come from physiology drifted to this age.
        policy: template-maintenance policy
            (:data:`MITIGATION_POLICIES`) that sets the template's age.
        legit: outcomes over the victim's own scenario-transformed,
            aged entries.
        attack: outcomes over scenario-transformed, aged random +
            emulating attacks.
    """

    scenario: str
    intensity: float
    victim_id: int
    age_days: float
    policy: str
    legit: ProbeCounts
    attack: ProbeCounts


def _probe_transform(
    auth: P2Auth,
    trials: Sequence[PinEntryTrial],
    transform: FaultInjector,
    key_parts: Tuple[object, ...],
) -> ProbeCounts:
    """Transform and authenticate each trial, tallying the outcomes.

    The per-probe generator is keyed on ``(*key_parts, index)``, so any
    caller that fixes its key parts gets rows independent of execution
    order — the property the parallel sweeps rely on.
    """
    accepted = rejected = quality = errors = 0
    for index, trial in enumerate(trials):
        rng = fault_rng(*key_parts, index)
        faulted = transform.apply(trial, rng)
        try:
            decision = auth.authenticate(faulted)
        except QualityError:
            quality += 1
            continue
        except P2AuthError:
            errors += 1
            continue
        except (ValueError, FloatingPointError):
            # Without a degradation policy, NaN-poisoned input crashes
            # deep in scipy/numpy with untyped errors — the behaviour
            # the ladder exists to replace. Tally it as an error so the
            # recovery comparison can show the contrast.
            errors += 1
            continue
        if decision.accepted:
            accepted += 1
        else:
            rejected += 1
    return ProbeCounts(
        accepted=accepted,
        rejected=rejected,
        quality_refused=quality,
        errors=errors,
    )


def _probe(
    auth: P2Auth,
    trials: Sequence[PinEntryTrial],
    fault_name: str,
    intensity: float,
    kind: str,
    victim_id: int,
    seed: int,
) -> ProbeCounts:
    """Fault and authenticate each trial under the historical rng keys."""
    return _probe_transform(
        auth,
        trials,
        make_fault(fault_name, intensity),
        (seed, fault_name, intensity, kind, victim_id),
    )


def _enroll_victim(
    data: StudyData,
    victim_id: int,
    pin: str,
    attacker_ids: Sequence[int],
    enroll_n: int,
    test_n: int,
    third_party_n: int,
    num_features: int,
    policy: Optional[DegradationPolicy],
    template_age_days: float = 0.0,
    probe_age_days: float = 0.0,
) -> Tuple[P2Auth, List[PinEntryTrial]]:
    """Enroll one victim; return the auth and test set.

    Mirrors the clean-protocol split of
    :func:`repro.eval.protocol.evaluate_user` (one-handed enrollment,
    shared third-party negatives through the process-wide cache).
    Enrollment trials come from the victim's physiology aged
    ``template_age_days`` (0 = the clean enrollment-day data,
    bit-identical to the historical behaviour); the returned test set
    comes from the same trial indices aged ``probe_age_days``. The
    third-party negative store stays at age 0 — it is a population
    resource collected once, and keeping it fixed preserves the shared
    feature cache across ages.
    """
    attacker_ids = list(attacker_ids)
    if victim_id in attacker_ids:
        raise ConfigurationError("the victim cannot attack themselves")
    contributor_ids = [
        uid
        for uid in range(data.n_users)
        if uid != victim_id and uid not in attacker_ids
    ]
    if not contributor_ids:
        raise ConfigurationError("no users left to populate the third-party store")

    pool = data.aged_trials(
        victim_id, pin, "one_handed", enroll_n + test_n,
        age_days=template_age_days,
    )
    enroll_trials, _ = enroll_test_split(pool, enroll_n)
    probe_pool = data.aged_trials(
        victim_id, pin, "one_handed", enroll_n + test_n,
        age_days=probe_age_days,
    )
    _, test_trials = enroll_test_split(probe_pool, enroll_n)
    store = ThirdPartyStore(data, contributor_ids, pin, "one_handed")
    third_party = store.sample(third_party_n)

    options = EnrollmentOptions(num_features=num_features)
    auth = P2Auth(pin=pin, options=options, policy=policy)
    bank = None
    if sharing_enabled(None) and options.feature_method in SHAREABLE_FEATURE_METHODS:
        bank = default_cache().negative_bank(third_party, auth.config, options)
    auth.enroll(enroll_trials, third_party, shared_negatives=bank)
    return auth, list(test_trials)


def evaluate_robustness_cell(
    data: StudyData,
    fault_name: str,
    intensity: float,
    victim_id: int,
    pin: str = PAPER_PINS[0],
    *,
    attacker_ids: Sequence[int] = (),
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    ra_per_attacker: int = 5,
    ea_per_attacker: int = 5,
    num_features: int = 9996,
    seed: int = 0,
    policy: Optional[DegradationPolicy] = None,
) -> RobustnessCell:
    """Evaluate one grid cell.

    Enrollment is clean; the fault hits probe trials only. ``policy``
    defaults to the full degradation ladder (pass an explicit policy —
    or ``None`` via :func:`evaluate_recovery` — to change that).
    """
    if fault_name not in FAULT_TYPES:
        raise ConfigurationError(
            f"unknown fault {fault_name!r}; known: {sorted(FAULT_TYPES)}"
        )
    if policy is None:
        policy = DegradationPolicy()
    auth, test_trials = _enroll_victim(
        data, victim_id, pin, attacker_ids, enroll_n, test_n,
        third_party_n, num_features, policy,
    )

    legit = _probe(
        auth, test_trials, fault_name, intensity, "legit", victim_id, seed
    )

    attack_trials: List[PinEntryTrial] = []
    for attacker_id in attacker_ids:
        attack_trials.extend(
            data.random_attack_trials(
                attacker_id, ra_per_attacker, pin_pool=PAPER_PINS
            )
        )
        attack_trials.extend(
            data.emulating_trials(attacker_id, victim_id, pin, ea_per_attacker)
        )
    attack = _probe(
        auth, attack_trials, fault_name, intensity, "attack", victim_id, seed
    )

    return RobustnessCell(
        fault=fault_name,
        intensity=float(intensity),
        victim_id=victim_id,
        legit=legit,
        attack=attack,
    )


def run_robustness_sweep(
    data: StudyData,
    faults: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    victim_ids: Sequence[int] = (0,),
    *,
    n_jobs: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> List[RobustnessCell]:
    """Sweep the fault × intensity × victim grid.

    Args:
        data: the study dataset.
        faults: fault names; defaults to every registered fault,
            alphabetically.
        intensities: the severity grid.
        victim_ids: victims evaluated per grid point.
        n_jobs: process-pool fan-out (see :mod:`repro.eval.parallel`);
            rows are identical to a serial run.
        seed: sweep fault seed; ``None`` resolves ``REPRO_FAULT_SEED``
            then 0.
        **kwargs: forwarded to :func:`evaluate_robustness_cell`.

    Returns:
        Cells in (victim, fault, intensity) order — victims outermost so
        a chunked pool keeps one victim's shared negatives on one worker.

    Every fault is a bit-exact no-op at intensity 0, so all of one
    victim's zero-intensity cells are the same clean evaluation; it is
    computed once per victim and replicated across faults (with only the
    ``fault`` label changed) instead of re-run per fault family. The
    returned rows are identical to the replicate-free sweep.
    """
    fault_names = (
        tuple(faults) if faults is not None else tuple(sorted(FAULT_TYPES))
    )
    resolved_seed = resolve_fault_seed(seed)
    # reprolint: disable-next=RL005 -- exact no-op grid coordinate
    zero = [i for i in intensities if i == 0.0]
    # reprolint: disable-next=RL005 -- exact no-op grid coordinate
    nonzero = [i for i in intensities if i != 0.0]
    share_baseline = bool(zero) and bool(fault_names)
    tasks = []
    for victim_id in victim_ids:
        if share_baseline:
            tasks.append(
                partial(
                    evaluate_robustness_cell, data, fault_names[0], 0.0,
                    victim_id, seed=resolved_seed, **kwargs,
                )
            )
        for fault_name in fault_names:
            for intensity in nonzero:
                tasks.append(
                    partial(
                        evaluate_robustness_cell, data, fault_name, intensity,
                        victim_id, seed=resolved_seed, **kwargs,
                    )
                )
    per_victim = max(
        1, (1 if share_baseline else 0) + len(fault_names) * len(nonzero)
    )
    results = run_tasks(tasks, n_jobs=n_jobs, chunksize=per_victim)

    cells: List[RobustnessCell] = []
    cursor = iter(results)
    for _ in victim_ids:
        baseline = next(cursor) if share_baseline else None
        by_fault = {
            fault_name: [next(cursor) for _ in nonzero]
            for fault_name in fault_names
        }
        for fault_name in fault_names:
            faulted = iter(by_fault[fault_name])
            for intensity in intensities:
                # reprolint: disable-next=RL005 -- exact no-op grid coordinate
                if intensity == 0.0:
                    assert baseline is not None
                    cells.append(
                        dataclasses.replace(baseline, fault=fault_name)
                    )
                else:
                    cells.append(next(faulted))
    return cells


def template_age(policy: str, age_days: float) -> float:
    """The age of the enrolled template under a maintenance policy.

    At calendar age ``age_days`` the user's physiology has drifted by
    :func:`repro.physio.drift_magnitude`; the template was built from
    physiology of this returned age. ``frozen`` never updates (the
    template stays at enrollment day 0); ``periodic_reenroll``
    re-enrolls every :data:`REENROLL_PERIOD_DAYS` days (template age =
    the last multiple of the period); ``sliding_update`` folds recent
    accepted entries into the template, keeping it
    :data:`SLIDING_LAG_DAYS` days behind the user.
    """
    if age_days < 0:
        raise ConfigurationError(f"age_days must be >= 0, got {age_days}")
    if policy == "frozen":
        return 0.0
    if policy == "periodic_reenroll":
        return math.floor(age_days / REENROLL_PERIOD_DAYS) * REENROLL_PERIOD_DAYS
    if policy == "sliding_update":
        return max(0.0, age_days - SLIDING_LAG_DAYS)
    raise ConfigurationError(
        f"unknown mitigation policy {policy!r}; "
        f"known: {list(MITIGATION_POLICIES)}"
    )


def evaluate_scenario_cell(
    data: StudyData,
    scenario_name: str,
    intensity: float,
    victim_id: int,
    pin: str = PAPER_PINS[0],
    *,
    age_days: float = 0.0,
    policy: str = "frozen",
    attacker_ids: Sequence[int] = (),
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    ra_per_attacker: int = 5,
    ea_per_attacker: int = 5,
    num_features: int = 9996,
    seed: int = 0,
    degradation: Optional[DegradationPolicy] = None,
) -> ScenarioCell:
    """Evaluate one scenario-sweep cell.

    The victim enrolls on physiology aged :func:`template_age` (per the
    maintenance ``policy``); every probe — the victim's own entries and
    the attacks — comes from physiology aged ``age_days`` and passes
    through the scenario transform at ``intensity``. At ``age_days=0``
    with the default ``frozen`` policy and intensity 0 this is exactly
    the clean robustness evaluation.
    """
    if scenario_name not in SCENARIO_TYPES:
        raise ConfigurationError(
            f"unknown scenario {scenario_name!r}; "
            f"known: {sorted(SCENARIO_TYPES)}"
        )
    if degradation is None:
        degradation = DegradationPolicy()
    auth, test_trials = _enroll_victim(
        data, victim_id, pin, attacker_ids, enroll_n, test_n,
        third_party_n, num_features, degradation,
        template_age_days=template_age(policy, age_days),
        probe_age_days=age_days,
    )

    scenario = make_scenario(scenario_name, intensity)
    legit = _probe_transform(
        auth, test_trials, scenario,
        (seed, "scenario", scenario_name, intensity, "legit", victim_id,
         age_days),
    )

    attack_trials: List[PinEntryTrial] = []
    for attacker_id in attacker_ids:
        attack_trials.extend(
            data.random_attack_trials(
                attacker_id, ra_per_attacker, pin_pool=PAPER_PINS,
                age_days=age_days,
            )
        )
        attack_trials.extend(
            data.emulating_trials(
                attacker_id, victim_id, pin, ea_per_attacker,
                age_days=age_days,
            )
        )
    attack = _probe_transform(
        auth, attack_trials, scenario,
        (seed, "scenario", scenario_name, intensity, "attack", victim_id,
         age_days),
    )

    return ScenarioCell(
        scenario=scenario_name,
        intensity=float(intensity),
        victim_id=victim_id,
        age_days=float(age_days),
        policy=policy,
        legit=legit,
        attack=attack,
    )


def run_scenario_sweep(
    data: StudyData,
    scenarios: Optional[Sequence[str]] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    victim_ids: Sequence[int] = (0,),
    age_grid: Sequence[float] = (0.0,),
    *,
    policy: str = "frozen",
    n_jobs: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> List[ScenarioCell]:
    """Sweep the scenario × intensity × victim × age grid.

    Args:
        data: the study dataset.
        scenarios: scenario names; defaults to every registered
            scenario, alphabetically.
        intensities: the severity grid.
        victim_ids: victims evaluated per grid point.
        age_grid: template/probe ages in days (see
            :func:`evaluate_scenario_cell`).
        policy: template-maintenance policy applied to every cell.
        n_jobs: process-pool fan-out; rows are identical to a serial
            run.
        seed: sweep fault seed; ``None`` resolves ``REPRO_FAULT_SEED``
            then 0.
        **kwargs: forwarded to :func:`evaluate_scenario_cell`.

    Returns:
        Cells in (victim, age, scenario, intensity) order — victims
        outermost so a chunked pool keeps one victim's shared negatives
        on one worker.

    Like :func:`run_robustness_sweep`, the zero-intensity cell is the
    same clean evaluation for every scenario at a given (victim, age)
    and is computed once there, then replicated across scenarios with
    only the label changed.
    """
    scenario_names = (
        tuple(scenarios) if scenarios is not None
        else tuple(sorted(SCENARIO_TYPES))
    )
    resolved_seed = resolve_fault_seed(seed)
    # reprolint: disable-next=RL005 -- exact no-op grid coordinate
    has_zero = any(i == 0.0 for i in intensities)
    # reprolint: disable-next=RL005 -- exact no-op grid coordinate
    nonzero = [i for i in intensities if i != 0.0]
    share_baseline = has_zero and bool(scenario_names)
    tasks = []
    for victim_id in victim_ids:
        for age in age_grid:
            if share_baseline:
                tasks.append(
                    partial(
                        evaluate_scenario_cell, data, scenario_names[0], 0.0,
                        victim_id, age_days=age, policy=policy,
                        seed=resolved_seed, **kwargs,
                    )
                )
            for scenario_name in scenario_names:
                for intensity in nonzero:
                    tasks.append(
                        partial(
                            evaluate_scenario_cell, data, scenario_name,
                            intensity, victim_id, age_days=age, policy=policy,
                            seed=resolved_seed, **kwargs,
                        )
                    )
    per_victim = max(
        1,
        len(age_grid)
        * ((1 if share_baseline else 0) + len(scenario_names) * len(nonzero)),
    )
    results = run_tasks(tasks, n_jobs=n_jobs, chunksize=per_victim)

    cells: List[ScenarioCell] = []
    cursor = iter(results)
    for _ in victim_ids:
        for _ in age_grid:
            baseline = next(cursor) if share_baseline else None
            by_scenario = {
                name: [next(cursor) for _ in nonzero]
                for name in scenario_names
            }
            for name in scenario_names:
                transformed = iter(by_scenario[name])
                for intensity in intensities:
                    # reprolint: disable-next=RL005 -- exact no-op grid coordinate
                    if intensity == 0.0:
                        assert baseline is not None
                        cells.append(
                            dataclasses.replace(baseline, scenario=name)
                        )
                    else:
                        cells.append(next(transformed))
    return cells


def run_mitigation_sweep(
    data: StudyData,
    policies: Sequence[str] = MITIGATION_POLICIES,
    age_grid: Sequence[float] = DEFAULT_AGE_GRID,
    victim_ids: Sequence[int] = (0,),
    *,
    scenario: str = "resting",
    intensity: float = 0.0,
    n_jobs: Optional[int] = None,
    seed: Optional[int] = None,
    **kwargs: Any,
) -> List[ScenarioCell]:
    """Sweep template-maintenance policies over the aging grid.

    Isolates aging from wear conditions: by default probes pass through
    a scenario at intensity 0 (a bit-exact no-op), so the FRR-vs-age and
    FAR-vs-age curves per policy measure template staleness alone.

    Returns:
        Cells in (victim, policy, age) order.
    """
    resolved_seed = resolve_fault_seed(seed)
    tasks = [
        partial(
            evaluate_scenario_cell, data, scenario, intensity, victim_id,
            age_days=age, policy=policy, seed=resolved_seed, **kwargs,
        )
        for victim_id in victim_ids
        for policy in policies
        for age in age_grid
    ]
    per_victim = max(1, len(policies) * len(age_grid))
    return run_tasks(tasks, n_jobs=n_jobs, chunksize=per_victim)


def _recovery_policy(mode: str) -> Optional[DegradationPolicy]:
    """The degradation policy behind a recovery-comparison mode."""
    if mode == "none":
        return None
    if mode == "gate_only":
        return DegradationPolicy(repair_gaps=False, channel_fallback=False)
    if mode == "full":
        return DegradationPolicy()
    raise ConfigurationError(
        f"unknown recovery mode {mode!r}; known: {list(RECOVERY_MODES)}"
    )


def evaluate_recovery(
    data: StudyData,
    fault_name: str = "channel_dropout",
    intensity: float = 1.0,
    victim_id: int = 0,
    pin: str = PAPER_PINS[0],
    *,
    enroll_n: int = 9,
    test_n: int = 9,
    third_party_n: int = 100,
    num_features: int = 9996,
    seed: int = 0,
) -> Dict[str, Dict[str, int]]:
    """Compare the degradation ladder against weaker policies.

    Runs the victim's own entries under one fault through three
    authenticators — no policy, quality gate only, and the full ladder —
    and tallies outcomes per mode. The acceptance claim: the full
    ladder converts refusals/errors into *decisions* (and recovers
    genuine acceptances) without ever accepting what the weaker modes
    refused as corrupt.
    """
    out: Dict[str, Dict[str, int]] = {}
    for mode in RECOVERY_MODES:
        auth, test_trials = _enroll_victim(
            data, victim_id, pin, (), enroll_n, test_n,
            third_party_n, num_features, _recovery_policy(mode),
        )
        counts = _probe(
            auth, test_trials, fault_name, intensity, "legit", victim_id, seed
        )
        out[mode] = counts.as_dict()
    return out


def _pooled(counts: Sequence[ProbeCounts]) -> ProbeCounts:
    """Sum outcome tallies across victims."""
    return ProbeCounts(
        accepted=sum(c.accepted for c in counts),
        rejected=sum(c.rejected for c in counts),
        quality_refused=sum(c.quality_refused for c in counts),
        errors=sum(c.errors for c in counts),
    )


def _aggregate(
    cells: Sequence[RobustnessCell],
) -> List[Dict[str, Any]]:
    """Collapse per-victim cells into per-(fault, intensity) rows."""
    grouped: Dict[Tuple[str, float], List[RobustnessCell]] = {}
    for cell in cells:
        grouped.setdefault((cell.fault, cell.intensity), []).append(cell)
    rows: List[Dict[str, Any]] = []
    for (fault, intensity) in sorted(grouped):
        members = grouped[(fault, intensity)]
        legit = _pooled([c.legit for c in members])
        attack = _pooled([c.attack for c in members])
        pooled = RobustnessCell(
            fault=fault, intensity=intensity, victim_id=-1,
            legit=legit, attack=attack,
        )
        rows.append(
            {
                "fault": fault,
                "intensity": intensity,
                "frr": round(pooled.frr, 4),
                "far": round(pooled.far, 4),
                "quality_rejection_rate": round(
                    pooled.quality_rejection_rate, 4
                ),
                "legit": legit.as_dict(),
                "attack": attack.as_dict(),
                "n_victims": len(members),
            }
        )
    return rows


def build_report(
    cells: Sequence[RobustnessCell],
    recovery: Optional[Mapping[str, Mapping[str, int]]] = None,
    *,
    seed: int = 0,
    label: str = "default",
) -> Dict[str, Any]:
    """Assemble the JSON-serialisable robustness report.

    Deliberately timestamp-free: regenerating with the same seed and
    grid produces a byte-identical ``ROBUSTNESS.json``.
    """
    rows = _aggregate(cells)
    # The security invariant is relative, not absolute: emulating
    # attackers occasionally beat the clean biometric (the paper's TRR
    # is below 100%), so the clean intensity-0 column sets each fault's
    # FAR baseline — damage may never push FAR above it.
    baselines: Dict[str, float] = {
        r["fault"]: r["far"]
        for r in rows
        # reprolint: disable-next=RL005 -- exact no-op grid coordinate
        if r["intensity"] == 0.0
    }
    excess = [
        r["far"] - baselines[r["fault"]]
        for r in rows
        if r["fault"] in baselines
    ]
    report: Dict[str, Any] = {
        "meta": {
            "label": label,
            "seed": seed,
            "faults": sorted({c.fault for c in cells}),
            "intensities": sorted({c.intensity for c in cells}),
            "victims": sorted({c.victim_id for c in cells}),
        },
        "grid": rows,
        "invariants": {
            "max_far": max((r["far"] for r in rows), default=float("nan")),
            "baseline_far": baselines,
            "max_excess_far": round(max(excess), 4) if excess else None,
            "faults_never_increase_far": (
                all(e <= 0 for e in excess) if excess else None
            ),
        },
    }
    if recovery is not None:
        report["recovery"] = {
            "fault": "channel_dropout",
            "intensity": 1.0,
            "modes": {mode: dict(counts) for mode, counts in recovery.items()},
        }
    return report


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render a report as the committed ``ROBUSTNESS.md`` table."""
    lines = [
        "# Robustness sweep",
        "",
        f"Label: `{report['meta']['label']}`, fault seed "
        f"{report['meta']['seed']}. Enrollment is clean; faults hit probe "
        "trials only. FRR counts quality refusals as rejections; the "
        "quality-rejection rate is the fraction of all probes refused "
        "without a biometric decision.",
        "",
        "| fault | intensity | FRR | FAR | quality-rejection rate |",
        "|---|---|---|---|---|",
    ]
    for row in report["grid"]:
        lines.append(
            f"| {row['fault']} | {row['intensity']:.2f} | "
            f"{row['frr']:.3f} | {row['far']:.3f} | "
            f"{row['quality_rejection_rate']:.3f} |"
        )
    recovery = report.get("recovery")
    if recovery:
        lines.extend(
            [
                "",
                "## Degradation-ladder recovery",
                "",
                f"Fault `{recovery['fault']}` at intensity "
                f"{recovery['intensity']:.2f}, victim's own entries, by "
                "policy:",
                "",
                "| policy | accepted | rejected | quality refused | errors |",
                "|---|---|---|---|---|",
            ]
        )
        for mode in RECOVERY_MODES:
            counts = recovery["modes"].get(mode)
            if counts is None:
                continue
            lines.append(
                f"| {mode} | {counts['accepted']} | {counts['rejected']} | "
                f"{counts['quality_refused']} | {counts['errors']} |"
            )
    never = report["invariants"]["faults_never_increase_far"]
    if never is None:
        verdict = "not checkable (no intensity-0 baseline in the grid)"
    elif never:
        verdict = "**holds** — no fault raised FAR above its clean baseline"
    else:
        verdict = "**VIOLATED**"
    lines.extend(
        [
            "",
            f"Security invariant: {verdict} "
            f"(max FAR {report['invariants']['max_far']:.3f}, max excess "
            f"over baseline "
            + (
                f"{report['invariants']['max_excess_far']:+.3f}"
                if report["invariants"]["max_excess_far"] is not None
                else "n/a"
            )
            + ").",
            "",
        ]
    )
    return "\n".join(lines)


def _aggregate_scenarios(
    cells: Sequence[ScenarioCell],
) -> List[Dict[str, Any]]:
    """Collapse per-victim cells into (scenario, age, intensity) rows."""
    grouped: Dict[Tuple[str, float, float], List[ScenarioCell]] = {}
    for cell in cells:
        key = (cell.scenario, cell.age_days, cell.intensity)
        grouped.setdefault(key, []).append(cell)
    rows: List[Dict[str, Any]] = []
    for (scenario, age_days, intensity) in sorted(grouped):
        members = grouped[(scenario, age_days, intensity)]
        legit = _pooled([c.legit for c in members])
        attack = _pooled([c.attack for c in members])
        pooled = ScenarioCell(
            scenario=scenario, intensity=intensity, victim_id=-1,
            age_days=age_days, policy=members[0].policy,
            legit=legit, attack=attack,
        )
        rows.append(
            {
                "scenario": scenario,
                "age_days": age_days,
                "intensity": intensity,
                "frr": round(pooled.frr, 4),
                "far": round(pooled.far, 4),
                "quality_rejection_rate": round(
                    pooled.quality_rejection_rate, 4
                ),
                "legit": legit.as_dict(),
                "attack": attack.as_dict(),
                "n_victims": len(members),
            }
        )
    return rows


def _mitigation_curves(
    cells: Sequence[ScenarioCell],
) -> Dict[str, List[Dict[str, Any]]]:
    """Pool mitigation cells into per-policy FRR/FAR-vs-age curves."""
    grouped: Dict[Tuple[str, float], List[ScenarioCell]] = {}
    for cell in cells:
        grouped.setdefault((cell.policy, cell.age_days), []).append(cell)
    curves: Dict[str, List[Dict[str, Any]]] = {}
    for (policy, age_days) in sorted(grouped):
        members = grouped[(policy, age_days)]
        pooled = ScenarioCell(
            scenario=members[0].scenario, intensity=members[0].intensity,
            victim_id=-1, age_days=age_days, policy=policy,
            legit=_pooled([c.legit for c in members]),
            attack=_pooled([c.attack for c in members]),
        )
        curves.setdefault(policy, []).append(
            {
                "age_days": age_days,
                "template_age_days": template_age(policy, age_days),
                "frr": round(pooled.frr, 4),
                "far": round(pooled.far, 4),
                "quality_rejection_rate": round(
                    pooled.quality_rejection_rate, 4
                ),
                "n_victims": len(members),
            }
        )
    return curves


def build_scenario_report(
    cells: Sequence[ScenarioCell],
    mitigation: Sequence[ScenarioCell] = (),
    *,
    seed: int = 0,
    label: str = "default",
) -> Dict[str, Any]:
    """Assemble the JSON-serialisable ``SCENARIOS.json`` report.

    Two CI-checked invariants:

    - ``scenario_far_within_baseline`` — no scenario pushes FAR above
      its own intensity-0 baseline: wear conditions may cost usability,
      never security. Checked at scenario level, with attack outcomes
      pooled over ages and victims: pooling keeps the check above the
      single-probe resolution at which a perturbation can flip one
      near-boundary attack either way, while still isolating the
      scenario's effect (the baseline ages identically).
    - ``update_policy_beats_frozen_at_max_age`` — at the oldest
      simulated age of the mitigation sweep, at least one template
      update policy has strictly lower FRR than ``frozen``: the
      mitigation is worth its complexity.

    Deliberately timestamp-free: regenerating with the same seed and
    grids produces a byte-identical report.
    """
    rows = _aggregate_scenarios(cells)
    by_scenario: Dict[Tuple[str, float], List[ScenarioCell]] = {}
    for cell in cells:
        by_scenario.setdefault((cell.scenario, cell.intensity), []).append(
            cell
        )
    pooled_far: Dict[Tuple[str, float], float] = {}
    for key, members in by_scenario.items():
        attack = _pooled([c.attack for c in members])
        pooled_far[key] = (
            attack.accepted / attack.total if attack.total else float("nan")
        )
    baselines: Dict[str, float] = {
        scenario: far
        for (scenario, intensity), far in pooled_far.items()
        # reprolint: disable-next=RL005 -- exact no-op grid coordinate
        if intensity == 0.0
    }
    excess = [
        far - baselines[scenario]
        for (scenario, _), far in sorted(pooled_far.items())
        if scenario in baselines
    ]

    curves = _mitigation_curves(mitigation)
    frozen_frr: Optional[float] = None
    best_update_frr: Optional[float] = None
    best_update_policy: Optional[str] = None
    max_age: Optional[float] = None
    if mitigation:
        max_age = max(c.age_days for c in mitigation)
        for policy, points in curves.items():
            at_max = [p for p in points if p["age_days"] == max_age]
            if not at_max:
                continue
            frr = at_max[-1]["frr"]
            if policy == "frozen":
                frozen_frr = frr
            elif best_update_frr is None or frr < best_update_frr:
                best_update_frr = frr
                best_update_policy = policy
    beats = (
        best_update_frr < frozen_frr
        if frozen_frr is not None and best_update_frr is not None
        else None
    )

    report: Dict[str, Any] = {
        "meta": {
            "label": label,
            "seed": seed,
            "scenarios": sorted({c.scenario for c in cells}),
            "intensities": sorted({c.intensity for c in cells}),
            "age_grid": sorted({c.age_days for c in cells}),
            "victims": sorted({c.victim_id for c in cells}),
            "policies": sorted({c.policy for c in mitigation}),
            "reenroll_period_days": REENROLL_PERIOD_DAYS,
            "sliding_lag_days": SLIDING_LAG_DAYS,
        },
        "scenario_grid": rows,
        "mitigation": {
            "age_grid": sorted({c.age_days for c in mitigation}),
            "curves": curves,
        },
        "invariants": {
            "max_far": max((r["far"] for r in rows), default=float("nan")),
            "baseline_far": {
                scenario: round(far, 4)
                for scenario, far in sorted(baselines.items())
            },
            "max_excess_far": round(max(excess), 4) if excess else None,
            "scenario_far_within_baseline": (
                all(e <= 1e-12 for e in excess) if excess else None
            ),
            "max_age_days": max_age,
            "frozen_frr_at_max_age": frozen_frr,
            "best_update_frr_at_max_age": best_update_frr,
            "best_update_policy": best_update_policy,
            "update_policy_beats_frozen_at_max_age": beats,
        },
    }
    return report


def render_scenario_markdown(report: Mapping[str, Any]) -> str:
    """Render a scenario report as the committed ``SCENARIOS.md``."""
    lines = [
        "# Scenario robustness sweep",
        "",
        f"Label: `{report['meta']['label']}`, fault seed "
        f"{report['meta']['seed']}. Probes (legitimate and attack) come "
        "from physiology aged to the row's day and pass through the "
        "scenario transform; the enrolled template stays at age 0 "
        "(frozen policy). FRR counts quality refusals as rejections.",
        "",
        "| scenario | age (days) | intensity | FRR | FAR | "
        "quality-rejection rate |",
        "|---|---|---|---|---|---|",
    ]
    for row in report["scenario_grid"]:
        lines.append(
            f"| {row['scenario']} | {row['age_days']:.0f} | "
            f"{row['intensity']:.2f} | {row['frr']:.3f} | "
            f"{row['far']:.3f} | {row['quality_rejection_rate']:.3f} |"
        )
    curves = report["mitigation"]["curves"]
    if curves:
        lines.extend(
            [
                "",
                "## Template maintenance vs aging",
                "",
                "Clean probes (scenario intensity 0) against a template "
                f"maintained per policy: `periodic_reenroll` refreshes "
                f"every {report['meta']['reenroll_period_days']:.0f} days, "
                f"`sliding_update` keeps the template "
                f"{report['meta']['sliding_lag_days']:.0f} days behind the "
                "user.",
                "",
                "| policy | age (days) | template age | FRR | FAR | "
                "quality-rejection rate |",
                "|---|---|---|---|---|---|",
            ]
        )
        for policy in sorted(curves):
            for point in curves[policy]:
                lines.append(
                    f"| {policy} | {point['age_days']:.0f} | "
                    f"{point['template_age_days']:.0f} | "
                    f"{point['frr']:.3f} | {point['far']:.3f} | "
                    f"{point['quality_rejection_rate']:.3f} |"
                )
    inv = report["invariants"]
    within = inv["scenario_far_within_baseline"]
    if within is None:
        security = "not checkable (no intensity-0 baseline in the grid)"
    elif within:
        security = (
            "**holds** — no scenario raised FAR (pooled over ages and "
            "victims) above its intensity-0 baseline"
        )
    else:
        security = "**VIOLATED**"
    beats = inv["update_policy_beats_frozen_at_max_age"]
    if beats is None:
        usability = "not checkable (no mitigation sweep)"
    elif beats:
        usability = (
            f"**holds** — `{inv['best_update_policy']}` reaches FRR "
            f"{inv['best_update_frr_at_max_age']:.3f} vs frozen "
            f"{inv['frozen_frr_at_max_age']:.3f} at day "
            f"{inv['max_age_days']:.0f}"
        )
    else:
        usability = "**VIOLATED**"
    lines.extend(
        [
            "",
            f"Security invariant: {security}.",
            "",
            f"Mitigation invariant: {usability}.",
            "",
        ]
    )
    return "\n".join(lines)
