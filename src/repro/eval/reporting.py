"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence

from .featurecache import CacheStats


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table.

    Args:
        headers: column headers.
        rows: row values; floats are rendered with 3 decimals.
        title: optional title line.

    Returns:
        The formatted table as a single string.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)


def format_cache_stats(stats: CacheStats) -> str:
    """One-line summary of the evaluation feature cache's counters.

    Note that with a parallel fan-out the parent process only sees its
    own cache; per-worker counters stay in the workers, so the line is
    labelled as this process's view.
    """
    def ratio(hits: int, misses: int) -> str:
        total = hits + misses
        if total == 0:
            return "unused"
        return f"{hits}/{total} hits"

    return (
        "feature cache (this process): "
        f"preprocessed trials {ratio(stats.trial_hits, stats.trial_misses)}, "
        f"negative banks {ratio(stats.bank_hits, stats.bank_misses)}"
    )
