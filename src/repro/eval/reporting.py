"""Plain-text table rendering for experiment results."""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table.

    Args:
        headers: column headers.
        rows: row values; floats are rendered with 3 decimals.
        title: optional title line.

    Returns:
        The formatted table as a single string.
    """
    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    rendered: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered))
        if rendered
        else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)).rstrip()

    parts = []
    if title:
        parts.append(title)
    parts.append(line([str(h) for h in headers]))
    parts.append(line(["-" * w for w in widths]))
    parts.extend(line(r) for r in rendered)
    return "\n".join(parts)
