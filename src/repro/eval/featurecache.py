"""Content-keyed caching of store-side preprocessing and featurization.

The evaluation protocol enrolls every victim of a grid point against
the *same* third-party store, yet the store trials used to be
preprocessed — and their negative features extracted — once per victim.
This module memoizes both stages behind content keys, so the cost is
paid once per distinct ``(store trials, pipeline config, feature
options)`` combination and every later victim gets the cached result:

* :meth:`FeatureCache.preprocess` — a cached front-end for
  :func:`repro.core.pipeline.preprocess_trials`, keyed per trial on the
  raw samples, events, and pipeline config.
* :meth:`FeatureCache.negative_bank` — a cached front-end for
  :func:`repro.core.enrollment.build_negative_bank`, keyed on the whole
  store's content plus the feature-relevant enrollment options.

Keys are BLAKE2b digests of the actual trial *content* (sample bytes,
keystroke events, metadata), not object identities — two trials
generated from the same seed hash identically even across processes,
which is what makes the cache valid inside the parallel experiment
fan-out: each worker owns a :func:`default_cache` instance of its own,
and regenerated trials hit it just as the originals would.

Both levels are bounded LRUs. Cached :class:`PreprocessedTrial` arrays
are frozen (``writeable=False``) because they are shared between every
consumer of a cache hit.
"""

from __future__ import annotations

import hashlib
import os
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..concurrency import checked_rlock
from ..config import PipelineConfig
from ..core.enrollment import (
    EnrollmentOptions,
    NegativeBank,
    build_negative_bank,
)
from ..core.pipeline import PreprocessedTrial, preprocess_trials
from ..types import PinEntryTrial

#: Environment variable that disables negative-bank sharing (set to
#: "0"/"false"/"off") without touching call sites.
SHARE_NEGATIVES_ENV = "REPRO_SHARE_NEGATIVES"

#: Default LRU capacities. A SMOKE-scale grid point touches ~30 distinct
#: trials; the PAPER scale a few thousand. Banks are ~one per grid
#: point. Both bounds exist to cap worker memory, not to be hit often.
MAX_CACHED_TRIALS = 4096
MAX_CACHED_BANKS = 64


def sharing_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve the negative-sharing switch.

    An explicit ``flag`` wins; otherwise sharing defaults to on unless
    ``REPRO_SHARE_NEGATIVES`` is set to a falsy string.
    """
    if flag is not None:
        return flag
    value = os.environ.get(SHARE_NEGATIVES_ENV, "1").strip().lower()
    return value not in ("0", "false", "no", "off")


def _hash_trial(h: "hashlib._Hash", trial: PinEntryTrial) -> None:
    """Feed one trial's content into a running digest."""
    recording = trial.recording
    h.update(np.ascontiguousarray(recording.samples).tobytes())
    h.update(
        repr(
            (
                recording.fs,
                recording.start_time,
                trial.pin,
                trial.user_id,
                trial.one_handed,
            )
        ).encode()
    )
    for event in trial.events:
        h.update(
            repr(
                (event.key, event.true_time, event.reported_time, event.hand)
            ).encode()
        )


def trial_content_key(trial: PinEntryTrial, config: PipelineConfig) -> str:
    """Digest of one trial's content plus the preprocessing config."""
    h = hashlib.blake2b(digest_size=16)
    _hash_trial(h, trial)
    h.update(repr(config).encode())
    return h.hexdigest()


def store_content_key(
    trials: Sequence[PinEntryTrial],
    config: PipelineConfig,
    options: EnrollmentOptions,
) -> str:
    """Digest of a whole store plus every bank-relevant option."""
    h = hashlib.blake2b(digest_size=16)
    for trial in trials:
        _hash_trial(h, trial)
    h.update(repr(config).encode())
    h.update(
        repr(
            (
                options.feature_method,
                options.num_features,
                options.seed,
                options.full_window,
                options.full_margin,
                options.privacy_boost,
            )
        ).encode()
    )
    return h.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`FeatureCache`."""

    trial_hits: int = 0
    trial_misses: int = 0
    bank_hits: int = 0
    bank_misses: int = 0

    def merged(self, other: "CacheStats") -> "CacheStats":
        """Element-wise sum (for aggregating per-worker stats)."""
        return CacheStats(
            trial_hits=self.trial_hits + other.trial_hits,
            trial_misses=self.trial_misses + other.trial_misses,
            bank_hits=self.bank_hits + other.bank_hits,
            bank_misses=self.bank_misses + other.bank_misses,
        )

    def copy(self) -> "CacheStats":
        """An independent snapshot of the counters."""
        return CacheStats(
            trial_hits=self.trial_hits,
            trial_misses=self.trial_misses,
            bank_hits=self.bank_hits,
            bank_misses=self.bank_misses,
        )


def _freeze(preprocessed: PreprocessedTrial) -> PreprocessedTrial:
    """Make a cached trial's arrays read-only; hits share these objects."""
    preprocessed.filtered.setflags(write=False)
    preprocessed.detrended.setflags(write=False)
    preprocessed.reference.setflags(write=False)
    return preprocessed


class FeatureCache:
    """Two-level LRU over preprocessed trials and negative banks.

    Thread-safe: both LRUs, and the counters, live behind one internal
    reentrant lock. Lookups and publications are locked; the expensive
    preprocessing/bank-building itself runs *outside* the lock, so a
    slow miss never stalls concurrent hits. Two threads missing the
    same key may both compute it — the content-keyed results are
    identical, and the first publication wins.
    """

    def __init__(
        self,
        max_trials: int = MAX_CACHED_TRIALS,
        max_banks: int = MAX_CACHED_BANKS,
    ) -> None:
        self._max_trials = max_trials
        self._max_banks = max_banks
        self._lock = checked_rlock("FeatureCache._lock")
        self._trials: "OrderedDict[str, PreprocessedTrial]" = OrderedDict()  # guarded-by: _lock
        self._banks: "OrderedDict[str, NegativeBank]" = OrderedDict()  # guarded-by: _lock
        self._stats = CacheStats()  # guarded-by: _lock

    @property
    def stats(self) -> CacheStats:
        """A point-in-time snapshot of the hit/miss counters."""
        with self._lock:
            return self._stats.copy()

    def preprocess(
        self,
        trials: Sequence[PinEntryTrial],
        config: Optional[PipelineConfig] = None,
    ) -> List[PreprocessedTrial]:
        """Cached, batched :func:`preprocess_trials`.

        Misses are preprocessed together in one batched call (so they
        still share the stacked detrend solve); hits are returned from
        the LRU untouched.
        """
        if config is None:
            config = PipelineConfig()
        keys = [trial_content_key(trial, config) for trial in trials]
        out: Dict[int, PreprocessedTrial] = {}
        missing: List[int] = []
        with self._lock:
            for idx, key in enumerate(keys):
                cached = self._trials.get(key)
                if cached is not None:
                    self._trials.move_to_end(key)
                    self._stats.trial_hits += 1
                    out[idx] = cached
                else:
                    self._stats.trial_misses += 1
                    missing.append(idx)
        if missing:
            # The batched solve runs unlocked; only the publication is
            # locked, re-checking so a racing filler's entry stays
            # canonical (the content key guarantees equal values).
            fresh = preprocess_trials([trials[idx] for idx in missing], config)
            with self._lock:
                for idx, pre in zip(missing, fresh):
                    existing = self._trials.get(keys[idx])
                    if existing is not None:
                        out[idx] = existing
                        continue
                    frozen = _freeze(pre)
                    out[idx] = frozen
                    self._trials[keys[idx]] = frozen
                    while len(self._trials) > self._max_trials:
                        self._trials.popitem(last=False)
        return [out[idx] for idx in range(len(keys))]

    def negative_bank(
        self,
        trials: Sequence[PinEntryTrial],
        config: Optional[PipelineConfig] = None,
        options: Optional[EnrollmentOptions] = None,
    ) -> NegativeBank:
        """Cached :func:`build_negative_bank` over a third-party store."""
        if config is None:
            config = PipelineConfig()
        if options is None:
            options = EnrollmentOptions()
        key = store_content_key(trials, config, options)
        with self._lock:
            cached = self._banks.get(key)
            if cached is not None:
                self._banks.move_to_end(key)
                self._stats.bank_hits += 1
                return cached
            self._stats.bank_misses += 1
        preprocessed = self.preprocess(trials, config)
        bank = build_negative_bank(
            trials, config, options, preprocessed=preprocessed
        )
        with self._lock:
            existing = self._banks.get(key)
            if existing is not None:
                return existing
            self._banks[key] = bank
            while len(self._banks) > self._max_banks:
                self._banks.popitem(last=False)
        return bank

    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        with self._lock:
            self._trials.clear()
            self._banks.clear()
            self._stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._trials) + len(self._banks)


_DEFAULT_CACHE_LOCK = threading.Lock()
_DEFAULT_CACHE: Optional[FeatureCache] = None  # guarded-by: _DEFAULT_CACHE_LOCK


def default_cache() -> FeatureCache:
    """The process-wide cache instance (one per evaluation worker).

    Locked lazy init: the old check-then-set let two racing threads
    build two caches and split every later hit between them.
    """
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        if _DEFAULT_CACHE is None:
            _DEFAULT_CACHE = FeatureCache()
        return _DEFAULT_CACHE


def clear_default_cache() -> None:
    """Reset the process-wide cache (tests and benchmarks)."""
    global _DEFAULT_CACHE
    with _DEFAULT_CACHE_LOCK:
        _DEFAULT_CACHE = None


def cache_stats() -> CacheStats:
    """Counters of the process-wide cache (zeros if never used)."""
    with _DEFAULT_CACHE_LOCK:
        cache = _DEFAULT_CACHE
    if cache is None:
        return CacheStats()
    return cache.stats
