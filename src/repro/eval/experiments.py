"""One experiment runner per table/figure of the paper's evaluation.

Every runner takes an :class:`ExperimentScale` and returns an
:class:`ExperimentResult` whose rows mirror the paper's artifact —
the same cases, sweeps, and series, so EXPERIMENTS.md can put the
paper-reported and measured values side by side. ``SMOKE`` scale keeps
CI fast; ``DEFAULT`` matches the shapes of the paper at reduced cost;
``PAPER`` is the full 15-volunteer protocol.

The runners are table-driven: each figure is one declarative
:class:`ExperimentSpec` entry in :data:`SPECS`, and a single generic
:func:`run_experiment` executes whichever spec it is handed. A
sweep-style figure declares its case grid (``cases``) and how to fold
per-case results into rows (``tabulate``); the handful of figures with
bespoke protocols (timing, baselines, the qualitative Fig. 9) plug in a
``custom`` body instead. The public ``run_fig*`` callables are thin
named wrappers generated from the table.

The paper's artifacts and their runners:

========  =================================================  ===============
Artifact  Content                                            Runner
========  =================================================  ===============
Fig. 8    privacy-boost accuracy/TRR per volunteer           run_fig8
Fig. 9    PPG traces of PIN "1648" for four users            run_fig9
Fig. 10   accuracy for 5 input cases + TRR under RA/EA       run_fig10
Fig. 11   ROCKET vs manual feature extraction                run_fig11
Fig. 12   PPG vs accelerometer                               run_fig12
Table I   time/memory overheads of the two pipelines         run_table1
Fig. 13   channel count and individual channels              run_fig13a/b
Fig. 14   third-party dataset size sweep                     run_fig14
Fig. 15   machine-learning model comparison                  run_fig15
Fig. 16   sampling-rate sweep at four channels               run_fig16
Fig. 17   sampling rate x channel count grid                 run_fig17
========  =================================================  ===============
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dc_replace
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config import PAPER_PINS, PipelineConfig
from ..core import EnrollmentOptions, P2Auth, preprocess_trial
from ..core.enrollment import extract_full_waveform
from ..data import StudyData, ThirdPartyStore, enroll_test_split
from ..errors import ConfigurationError
from ..ml import KNNClassifier, ResNet1DClassifier, RidgeClassifier, RNNFNNClassifier
from ..signal import decimate_recording
from ..types import PinEntryTrial
from .baselines import AccelerometerPipeline, ShangThresholdBaseline
from .parallel import run_tasks
from .profiling import profile_call
from .protocol import UserEvaluation, evaluate_user
from .reporting import format_table


@dataclass(frozen=True)
class ExperimentScale:
    """Cost/fidelity knobs shared by all experiment runners.

    Attributes:
        n_users: simulated population size.
        n_victims: users enrolled and evaluated as victims.
        n_attackers: users reserved as attackers (never in the store).
        enroll_n: enrollment entries per victim (paper: 9).
        test_n: held-out legitimate entries per victim.
        third_party_n: third-party store samples (paper: 100).
        ra_per_attacker / ea_per_attacker: attack entries per attacker.
        num_features: MiniRocket feature budget.
        seed: master seed for the population and all trials.
    """

    n_users: int = 20
    n_victims: int = 4
    n_attackers: int = 2
    enroll_n: int = 9
    test_n: int = 8
    third_party_n: int = 80
    ra_per_attacker: int = 5
    ea_per_attacker: int = 5
    num_features: int = 2520
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_victims + self.n_attackers > self.n_users:
            raise ConfigurationError(
                "victims + attackers exceed the population"
            )

    @property
    def victim_ids(self) -> Tuple[int, ...]:
        """Victims are the first users of the population."""
        return tuple(range(self.n_victims))

    @property
    def attacker_ids(self) -> Tuple[int, ...]:
        """Attackers are the last users of the population."""
        return tuple(range(self.n_users - self.n_attackers, self.n_users))


#: Fast scale for CI and unit tests.
SMOKE = ExperimentScale(
    n_users=7,
    n_victims=2,
    n_attackers=2,
    enroll_n=6,
    test_n=4,
    third_party_n=24,
    ra_per_attacker=3,
    ea_per_attacker=3,
    num_features=840,
)

#: Default scale: paper-shaped results at a fraction of the cost.
DEFAULT = ExperimentScale()

#: The paper's full protocol (15 volunteers, 100 third-party samples,
#: ~10K features, 4 attackers).
PAPER = ExperimentScale(
    n_users=15,
    n_victims=9,
    n_attackers=4,
    enroll_n=9,
    test_n=9,
    third_party_n=100,
    ra_per_attacker=10,
    ea_per_attacker=10,
    num_features=9996,
    seed=1,
)


@dataclass(frozen=True)
class ExperimentResult:
    """A reproduced table/figure.

    Attributes:
        experiment: short id ("fig8", "tab1", ...).
        title: human-readable description.
        headers: column names.
        rows: table rows, paper-shaped.
        summary: headline numbers for tests and EXPERIMENTS.md.
    """

    experiment: str
    title: str
    headers: Tuple[str, ...]
    rows: Tuple[Tuple[object, ...], ...]
    summary: Dict[str, float] = field(default_factory=dict)

    def __str__(self) -> str:
        return format_table(self.headers, self.rows, title=self.title)


TrialTransform = Callable[[PinEntryTrial], PinEntryTrial]


# Trial transforms are module-level classes (not closures) so that
# evaluation tasks carrying them stay picklable for the process pool.


@dataclass(frozen=True)
class ChannelSubset:
    """Transform keeping only the given PPG channel rows."""

    indices: Tuple[int, ...]

    def __call__(self, trial: PinEntryTrial) -> PinEntryTrial:
        return dc_replace(
            trial, recording=trial.recording.select_channels(list(self.indices))
        )


@dataclass(frozen=True)
class DecimateTo:
    """Transform resampling the PPG recording to ``fs`` Hz."""

    fs: float

    def __call__(self, trial: PinEntryTrial) -> PinEntryTrial:
        return dc_replace(
            trial, recording=decimate_recording(trial.recording, self.fs)
        )


@dataclass(frozen=True)
class ComposedTransform:
    """Apply several trial transforms in sequence."""

    steps: Tuple[TrialTransform, ...]

    def __call__(self, trial: PinEntryTrial) -> PinEntryTrial:
        for step in self.steps:
            trial = step(trial)
        return trial


def channel_subset(indices: Sequence[int]) -> TrialTransform:
    """Transform keeping only the given PPG channel rows."""
    return ChannelSubset(indices=tuple(indices))


def decimate_to(fs: float) -> TrialTransform:
    """Transform resampling the PPG recording to ``fs`` Hz."""
    return DecimateTo(fs=fs)


def _study(scale: ExperimentScale, include_accel: bool = False) -> StudyData:
    return StudyData(
        n_users=scale.n_users, seed=scale.seed, include_accel=include_accel
    )


def _mean(values: Sequence[float]) -> float:
    return float(np.mean(list(values)))


def _task_params(scale: ExperimentScale, **kwargs: Any) -> Dict[str, object]:
    """The scale's ``evaluate_user`` defaults, overridden by ``kwargs``."""
    params: Dict[str, object] = dict(
        attacker_ids=scale.attacker_ids,
        enroll_n=scale.enroll_n,
        test_n=scale.test_n,
        third_party_n=scale.third_party_n,
        ra_per_attacker=scale.ra_per_attacker,
        ea_per_attacker=scale.ea_per_attacker,
        num_features=scale.num_features,
    )
    params.update(kwargs)
    return params


def _evaluate_all(
    data: StudyData,
    scale: ExperimentScale,
    pin: str = PAPER_PINS[0],
    victims: Optional[Sequence[int]] = None,
    n_jobs: Optional[int] = None,
    **kwargs: Any,
) -> List[UserEvaluation]:
    """Evaluate every victim under one condition and return the list.

    Keyword arguments override the scale's defaults and are forwarded
    to :func:`repro.eval.protocol.evaluate_user`. ``n_jobs`` fans the
    victims out over a process pool; results match a serial run.
    """
    victims = list(victims if victims is not None else scale.victim_ids)
    params = _task_params(scale, **kwargs)
    tasks = [
        partial(evaluate_user, data, victim, pin, **params) for victim in victims
    ]
    return run_tasks(tasks, n_jobs=n_jobs)


def _evaluate_cases(
    data: StudyData,
    scale: ExperimentScale,
    cases: Sequence[Tuple[object, Dict[str, object]]],
    pin: str = PAPER_PINS[0],
    n_jobs: Optional[int] = None,
) -> List[List[UserEvaluation]]:
    """Evaluate several ``(label, kwargs)`` cases over all victims.

    The case x victim grid is flattened into one task list so a single
    process pool covers the whole sweep — there are no nested pools and
    workers stay busy even when cases outnumber victims. Results come
    back regrouped per case, in input order. Tasks are dispatched in
    per-case chunks: every victim of a case shares its third-party
    store, so landing them on one worker turns the store-side
    preprocessing and featurization into feature-cache hits.
    """
    victims = list(scale.victim_ids)
    tasks: List[partial] = []
    for _label, kwargs in cases:
        params = _task_params(scale, **kwargs)
        tasks.extend(
            partial(evaluate_user, data, victim, pin, **params)
            for victim in victims
        )
    flat = run_tasks(tasks, n_jobs=n_jobs, chunksize=len(victims))
    n = len(victims)
    return [flat[i * n : (i + 1) * n] for i in range(len(cases))]


def _case_stats(results: Sequence[UserEvaluation]) -> Tuple[float, float]:
    """Mean accuracy and mean (RA+EA averaged) TRR over victims."""
    acc = _mean([r.accuracy for r in results])
    trr = _mean([_mean([r.trr_random, r.trr_emulating]) for r in results])
    return acc, trr


#: A case grid: ``scale -> [(label, evaluate_user-kwargs), ...]``.
CaseFactory = Callable[
    [ExperimentScale], List[Tuple[Any, Dict[str, object]]]
]

#: Folds per-case results into ``(rows, summary)``.
Tabulate = Callable[
    [
        Sequence[Tuple[Any, Dict[str, object]]],
        Sequence[Sequence[UserEvaluation]],
    ],
    Tuple[List[Tuple[object, ...]], Dict[str, float]],
]

#: A bespoke experiment body: ``(data, scale, n_jobs) -> (rows, summary)``.
CustomBody = Callable[
    [StudyData, ExperimentScale, Optional[int]],
    Tuple[List[Tuple[object, ...]], Dict[str, float]],
]


# ---------------------------------------------------------------------------
# Case grids for the sweep-style figures
# ---------------------------------------------------------------------------

_CHANNEL_SUBSETS = {1: [0], 2: [0, 1], 3: [0, 1, 2], 4: [0, 1, 2, 3]}  # concurrency: immutable-after-init
_CHANNEL_LABELS = ["s0/infrared", "s0/red", "s1/infrared", "s1/red"]  # concurrency: immutable-after-init
_STORE_SIZES = (5, 10, 20, 60, 100, 200, 300)
_SAMPLING_RATES = (30.0, 50.0, 75.0, 100.0)


def _fig10_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    return [
        ("one-hand", dict()),
        ("single boost", dict(privacy_boost=True)),
        ("double-3", dict(condition="double3")),
        ("double-2", dict(condition="double2")),
        ("no-PIN", dict(no_pin=True, ra_pin_pool=None)),
    ]


def _fig13a_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    return [
        (count, dict(privacy_boost=True, transform=channel_subset(indices)))
        for count, indices in _CHANNEL_SUBSETS.items()
    ]


def _fig13b_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    return [
        (label, dict(privacy_boost=True, transform=channel_subset([index])))
        for index, label in enumerate(_CHANNEL_LABELS)
    ]


def _fig14_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    return [(size, dict(third_party_n=size)) for size in _STORE_SIZES]


def _fig16_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    base = PipelineConfig()
    cases: List[Tuple[Any, Dict[str, object]]] = []
    for rate in _SAMPLING_RATES:
        transform = None if rate == base.fs else decimate_to(rate)
        config = base if rate == base.fs else base.scaled_to(rate)
        cases.append(
            (
                rate,
                dict(
                    privacy_boost=True,
                    transform=transform,
                    pipeline_config=config,
                ),
            )
        )
    return cases


def _fig17_cases(scale: ExperimentScale) -> List[Tuple[Any, Dict[str, object]]]:
    base = PipelineConfig()
    cases: List[Tuple[Any, Dict[str, object]]] = []
    for rate in _SAMPLING_RATES:
        config = base if rate == base.fs else base.scaled_to(rate)
        for count in (1, 2, 3, 4):
            steps: List[TrialTransform] = [
                channel_subset(_CHANNEL_SUBSETS[count])
            ]
            if rate != base.fs:
                steps.append(decimate_to(rate))
            cases.append(
                (
                    (rate, count),
                    dict(
                        privacy_boost=True,
                        transform=ComposedTransform(steps=tuple(steps)),
                        pipeline_config=config,
                    ),
                )
            )
    return cases


# ---------------------------------------------------------------------------
# Tabulators: per-case results -> (rows, summary)
# ---------------------------------------------------------------------------


def _fig10_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    accuracies: List[float] = []
    trr_ra_all: List[float] = []
    trr_ea_all: List[float] = []
    for (label, _kwargs), results in zip(cases, per_case):
        acc = _mean([r.accuracy for r in results])
        trr_ra = _mean([r.trr_random for r in results])
        trr_ea = _mean([r.trr_emulating for r in results])
        accuracies.append(acc)
        trr_ra_all.append(trr_ra)
        trr_ea_all.append(trr_ea)
        rows.append((label, acc, trr_ra, trr_ea))
    rows.append(("average", _mean(accuracies), _mean(trr_ra_all), _mean(trr_ea_all)))
    summary = {
        "one_hand": accuracies[0],
        "single_boost": accuracies[1],
        "double3": accuracies[2],
        "double2": accuracies[3],
        "no_pin": accuracies[4],
        "average": _mean(accuracies),
        "trr_random": _mean(trr_ra_all),
        "trr_emulating": _mean(trr_ea_all),
    }
    return rows, summary


def _fig13a_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for (count, _kwargs), results in zip(cases, per_case):
        acc, trr = _case_stats(results)
        rows.append((count, acc, trr))
        summary[f"acc_{count}ch"] = acc
        summary[f"trr_{count}ch"] = trr
    return rows, summary


def _fig13b_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    ir_acc: List[float] = []
    red_acc: List[float] = []
    ir_trr: List[float] = []
    red_trr: List[float] = []
    for (label, _kwargs), results in zip(cases, per_case):
        acc, trr = _case_stats(results)
        rows.append((label, acc, trr))
        if "infrared" in label:
            ir_acc.append(acc)
            ir_trr.append(trr)
        else:
            red_acc.append(acc)
            red_trr.append(trr)
    summary = {
        "infrared_accuracy": _mean(ir_acc),
        "red_accuracy": _mean(red_acc),
        "infrared_trr": _mean(ir_trr),
        "red_trr": _mean(red_trr),
    }
    return rows, summary


def _fig14_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for (size, _kwargs), results in zip(cases, per_case):
        acc, trr = _case_stats(results)
        rows.append((size, acc, trr))
        summary[f"acc_{size}"] = acc
        summary[f"trr_{size}"] = trr
    return rows, summary


def _fig16_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for (rate, _kwargs), results in zip(cases, per_case):
        acc, trr = _case_stats(results)
        rows.append((int(rate), acc, trr))
        summary[f"acc_{int(rate)}hz"] = acc
        summary[f"trr_{int(rate)}hz"] = trr
    return rows, summary


def _fig17_tabulate(
    cases: Sequence[Tuple[Any, Dict[str, object]]],
    per_case: Sequence[Sequence[UserEvaluation]],
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for ((rate, count), _kwargs), results in zip(cases, per_case):
        acc = _mean([r.accuracy for r in results])
        rows.append((int(rate), count, acc))
        summary[f"acc_{int(rate)}hz_{count}ch"] = acc
    return rows, summary


# ---------------------------------------------------------------------------
# Bespoke experiment bodies (timing, baselines, the qualitative Fig. 9)
# ---------------------------------------------------------------------------


def _fig8_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int]
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    results = _evaluate_all(data, scale, privacy_boost=True, n_jobs=n_jobs)
    rows: List[Tuple[object, ...]] = []
    for r in results:
        trr = _mean([r.trr_random, r.trr_emulating])
        instability = data.user(r.user_id).noise.instability
        rows.append((f"volunteer {r.user_id}", r.accuracy, trr, instability))
    accuracy = _mean([r.accuracy for r in results])
    trr = _mean([_mean([r.trr_random, r.trr_emulating]) for r in results])
    rows.append(("mean", accuracy, trr, float("nan")))
    return rows, {"accuracy": accuracy, "trr": trr}


def _fig9_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int], pin: str = "1648"
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    # n_jobs is accepted for the uniform body signature but unused:
    # this qualitative analysis is light enough that pool start-up
    # would dominate.
    config = PipelineConfig()
    n_users = min(4, scale.n_users)
    reps = 5

    # segments[user][key] -> list of (channels, window) arrays.
    segments: List[Dict[str, List[np.ndarray]]] = []
    for user_id in range(n_users):
        per_key: Dict[str, List[np.ndarray]] = {}
        for trial in data.trials(user_id, pin, "one_handed", reps):
            pre = preprocess_trial(trial, config)
            for position, key in enumerate(trial.pin):
                seg = pre.segment(position, config.segment_window)
                per_key.setdefault(key, []).append(seg.samples)
        segments.append(per_key)

    def dist(a: np.ndarray, b: np.ndarray) -> float:
        return float(np.sqrt(np.mean((a - b) ** 2)))

    def mean_cross(xs: List[np.ndarray], ys: List[np.ndarray]) -> float:
        return _mean([dist(a, b) for a in xs for b in ys])

    intra: List[float] = []
    for per_key in segments:
        for waveforms in per_key.values():
            pairs = [
                dist(waveforms[i], waveforms[j])
                for i in range(len(waveforms))
                for j in range(i + 1, len(waveforms))
            ]
            if pairs:
                intra.append(_mean(pairs))
    inter: List[float] = []
    rows: List[Tuple[object, ...]] = []
    for u in range(n_users):
        for v in range(u + 1, n_users):
            shared = set(segments[u]) & set(segments[v])
            pair = _mean(
                [mean_cross(segments[u][k], segments[v][k]) for k in shared]
            )
            inter.append(pair)
            rows.append((f"user {u} vs user {v}", pair))
    intra_mean = _mean(intra)
    inter_mean = _mean(inter)
    rows.append(("mean intra-user", intra_mean))
    rows.append(("mean inter-user", inter_mean))
    rows.append(("inter/intra ratio", inter_mean / intra_mean))
    summary = {
        "intra": intra_mean,
        "inter": inter_mean,
        "ratio": inter_mean / intra_mean,
    }
    return rows, summary


def _fig11_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int]
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    config = PipelineConfig()
    pin = PAPER_PINS[0]

    rocket = _evaluate_all(data, scale, n_jobs=n_jobs)
    rocket_acc = _mean([r.accuracy for r in rocket])
    rocket_trr = _mean(
        [_mean([r.trr_random, r.trr_emulating]) for r in rocket]
    )

    manual_acc: List[float] = []
    manual_rej: List[float] = []
    for victim in scale.victim_ids:
        trials = data.trials(victim, pin, "one_handed", scale.enroll_n + scale.test_n)
        enroll, test = enroll_test_split(trials, scale.enroll_n)
        def waveform(t: PinEntryTrial) -> np.ndarray:
            return extract_full_waveform(preprocess_trial(t, config))

        baseline = ShangThresholdBaseline(tau=1.7, dtw_stride=2)
        baseline.enroll(np.stack([waveform(t) for t in enroll]))
        manual_acc.append(_mean([baseline.accepts(waveform(t)) for t in test]))
        rejections = []
        for attacker in scale.attacker_ids:
            for t in data.emulating_trials(
                attacker, victim, pin, scale.ea_per_attacker
            ):
                rejections.append(not baseline.accepts(waveform(t)))
        manual_rej.append(_mean(rejections))
    manual_accuracy = _mean(manual_acc)
    manual_trr = _mean(manual_rej)

    rows = [
        ("P2Auth (ROCKET)", rocket_acc, rocket_trr),
        ("manual (DTW threshold)", manual_accuracy, manual_trr),
    ]
    summary = {
        "rocket_accuracy": rocket_acc,
        "rocket_trr": rocket_trr,
        "manual_accuracy": manual_accuracy,
        "manual_trr": manual_trr,
    }
    return rows, summary


def _fig12_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int]
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    pin = PAPER_PINS[0]

    ppg = _evaluate_all(data, scale, n_jobs=n_jobs)
    ppg_acc = _mean([r.accuracy for r in ppg])
    ppg_trr = _mean([_mean([r.trr_random, r.trr_emulating]) for r in ppg])

    accel_acc: List[float] = []
    accel_rej: List[float] = []
    contributors = [
        uid
        for uid in range(scale.n_users)
        if uid not in scale.attacker_ids
    ]
    for victim in scale.victim_ids:
        trials = data.trials(victim, pin, "one_handed", scale.enroll_n + scale.test_n)
        enroll, test = enroll_test_split(trials, scale.enroll_n)
        store = ThirdPartyStore(
            data, [u for u in contributors if u != victim], pin
        )
        third = store.sample(scale.third_party_n)
        pipeline = AccelerometerPipeline(num_features=scale.num_features)
        pipeline.enroll(enroll, third)
        accel_acc.append(_mean([pipeline.accepts(t) for t in test]))
        rejections = []
        for attacker in scale.attacker_ids:
            for t in data.emulating_trials(
                attacker, victim, pin, scale.ea_per_attacker
            ):
                rejections.append(not pipeline.accepts(t))
        accel_rej.append(_mean(rejections))
    accel_accuracy = _mean(accel_acc)
    accel_trr = _mean(accel_rej)

    rows = [
        ("PPG", ppg_acc, ppg_trr),
        ("accelerometer", accel_accuracy, accel_trr),
    ]
    summary = {
        "ppg_accuracy": ppg_acc,
        "ppg_trr": ppg_trr,
        "accel_accuracy": accel_accuracy,
        "accel_trr": accel_trr,
    }
    return rows, summary


def _tab1_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int]
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    # n_jobs is accepted for the uniform body signature but unused —
    # this is a timing experiment and concurrent workers would distort
    # the per-pipeline wall times it reports.
    pin = PAPER_PINS[0]
    victim = scale.victim_ids[0]
    trials = data.trials(victim, pin, "one_handed", scale.enroll_n + 1)
    enroll, probe = trials[: scale.enroll_n], trials[scale.enroll_n]
    store = ThirdPartyStore(
        data,
        [u for u in range(scale.n_users)
         if u != victim and u not in scale.attacker_ids],
        pin,
    )
    third = store.sample(scale.third_party_n)

    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for label, method in (("ROCKET-based", "rocket"), ("manual feature-based", "manual")):
        options = EnrollmentOptions(
            feature_method=method, num_features=scale.num_features
        )
        auth = P2Auth(pin=pin, options=options)
        enroll_run = profile_call(lambda: auth.enroll(enroll, third))
        auth_run = profile_call(lambda: auth.authenticate(probe))
        rows.append(
            (
                label,
                enroll_run.seconds,
                enroll_run.peak_mib,
                auth_run.seconds,
                auth_run.peak_mib,
            )
        )
        key = "rocket" if method == "rocket" else "manual"
        summary[f"{key}_enroll_s"] = enroll_run.seconds
        summary[f"{key}_auth_s"] = auth_run.seconds
    summary["enroll_ratio"] = summary["rocket_enroll_s"] / summary["manual_enroll_s"]
    summary["auth_ratio"] = summary["rocket_auth_s"] / summary["manual_auth_s"]
    return rows, summary


def _fig15_body(
    data: StudyData, scale: ExperimentScale, n_jobs: Optional[int]
) -> Tuple[List[Tuple[object, ...]], Dict[str, float]]:
    # Models run one after the other (victims fan out within each) so
    # the reported wall time still compares the models fairly.
    # Classifier factories are ``functools.partial`` objects, not
    # lambdas, so tasks pickle.
    models = [
        ("rocket+ridge", dict(feature_method="rocket",
                              classifier_factory=RidgeClassifier)),
        ("knn", dict(feature_method="rocket",
                     classifier_factory=partial(KNNClassifier, k=5))),
        ("resnet", dict(feature_method="raw",
                        classifier_factory=partial(ResNet1DClassifier, epochs=50))),
        ("rnn-fnn", dict(feature_method="raw",
                         classifier_factory=partial(RNNFNNClassifier, epochs=60))),
    ]
    rows: List[Tuple[object, ...]] = []
    summary: Dict[str, float] = {}
    for label, kwargs in models:
        start = time.perf_counter()
        results = _evaluate_all(data, scale, n_jobs=n_jobs, **kwargs)
        elapsed = time.perf_counter() - start
        acc = _mean([r.accuracy for r in results])
        trr = _mean([_mean([r.trr_random, r.trr_emulating]) for r in results])
        rows.append((label, acc, trr, elapsed))
        key = label.replace("+", "_").replace("-", "_")
        summary[f"{key}_accuracy"] = acc
        summary[f"{key}_trr"] = trr
    return rows, summary


# ---------------------------------------------------------------------------
# The spec table and the one generic runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentSpec:
    """One declarative table/figure entry.

    Either ``cases`` + ``tabulate`` (a case sweep evaluated through the
    shared flattened grid) or ``custom`` (a bespoke body) must be set.

    Attributes:
        experiment: artifact id ("fig8", "tab1", ...).
        title: the result's table title.
        headers: the result's column names.
        description: docstring of the generated ``run_*`` wrapper; the
            first line is what ``python -m repro list`` prints.
        runner_name: name of the generated wrapper (defaults to
            ``run_<experiment>``).
        include_accel: synthesize accelerometer streams in the study.
        cases: declarative case grid for sweep-style figures.
        tabulate: folds per-case results into ``(rows, summary)``.
        custom: bespoke body for figures that are not plain sweeps.
    """

    experiment: str
    title: str
    headers: Tuple[str, ...]
    description: str
    runner_name: str = ""
    include_accel: bool = False
    cases: Optional[CaseFactory] = None
    tabulate: Optional[Tabulate] = None
    custom: Optional[CustomBody] = None

    def __post_init__(self) -> None:
        if (self.custom is None) == (self.cases is None):
            raise ConfigurationError(
                f"spec {self.experiment!r} must set exactly one of "
                "cases/custom"
            )
        if self.cases is not None and self.tabulate is None:
            raise ConfigurationError(
                f"spec {self.experiment!r} declares cases without a tabulate"
            )

    @property
    def name(self) -> str:
        """The generated wrapper's function name."""
        return self.runner_name or f"run_{self.experiment}"


#: The declarative experiment table: one entry per paper artifact.
SPECS: Tuple[ExperimentSpec, ...] = (
    ExperimentSpec(
        experiment="fig8",
        title="Fig. 8 — privacy boost: per-volunteer accuracy and TRR",
        headers=("volunteer", "accuracy", "trr", "instability"),
        description=(
            "Per-volunteer accuracy and TRR with waveform fusion enabled.\n"
            "\n"
            "    Paper: average accuracy ~83% across 12 volunteers, TRR close"
            " to or\n"
            "    above 90%; stable users (volunteer 8) beat restless ones\n"
            "    (volunteer 11).\n"
            "    "
        ),
        custom=_fig8_body,
    ),
    ExperimentSpec(
        experiment="fig9",
        title='Fig. 9 — keystroke-waveform separation for PIN "1648"',
        headers=("pair", "rms distance"),
        description=(
            "Quantitative stand-in for the paper's waveform plot.\n"
            "\n"
            "    The figure's message is that, for the same PIN, each user's\n"
            "    keystroke waveforms look alike across repetitions while"
            " differing\n"
            "    strongly between users. We compare calibrated (apex-aligned)\n"
            "    single-keystroke segments per key: the mean RMS distance"
            " between\n"
            "    same-user repetitions (intra) versus different-user pairs"
            " (inter)\n"
            "    of the *same* key. A ratio well above 1 is the quantitative\n"
            "    analogue of the visual separation in the paper's plot.\n"
            "    "
        ),
        custom=_fig9_body,
    ),
    ExperimentSpec(
        experiment="fig10",
        title="Fig. 10 — authentication accuracy for 5 cases and attack TRR",
        headers=("case", "accuracy", "trr_random", "trr_emulating"),
        description=(
            "The paper's headline figure: five input cases and two attacks.\n"
            "\n"
            "    Paper: one-handed ~98%, privacy boost ~83%, double-3 ~88%,\n"
            "    double-2 ~70%, overall average ~84%; TRR ~98% for both random"
            " and\n"
            "    emulating attacks.\n"
            "    "
        ),
        cases=_fig10_cases,
        tabulate=_fig10_tabulate,
    ),
    ExperimentSpec(
        experiment="fig11",
        title="Fig. 11 — ROCKET-based vs manual feature extraction",
        headers=("method", "accuracy", "trr"),
        description=(
            "ROCKET pipeline vs the Shang-style threshold-DTW baseline.\n"
            "\n"
            "    Paper: the manual baseline reaches only ~0.62 accuracy on"
            " keystroke\n"
            "    data while P2Auth clearly wins on both accuracy and TRR. The"
            " DTW\n"
            "    baseline loop stays serial — it is cheap next to the ROCKET"
            " runs.\n"
            "    "
        ),
        custom=_fig11_body,
    ),
    ExperimentSpec(
        experiment="fig12",
        title="Fig. 12 — PPG vs accelerometer-based authentication",
        headers=("sensor", "accuracy", "trr"),
        description=(
            "PPG vs accelerometer under the same ROCKET pipeline.\n"
            "\n"
            "    Paper: typing is nearly static, so wrist acceleration barely\n"
            "    changes and accelerometer-based authentication is both less\n"
            "    accurate and less attack-resistant than PPG.\n"
            "    "
        ),
        include_accel=True,
        custom=_fig12_body,
    ),
    ExperimentSpec(
        experiment="tab1",
        title="Table I — computational and memory overheads",
        headers=(
            "method",
            "enroll time (s)",
            "enroll peak (MiB)",
            "auth time (s)",
            "auth peak (MiB)",
        ),
        description=(
            "Enrollment/authentication time and memory, ROCKET vs manual.\n"
            "\n"
            "    Paper (Table I): ROCKET enrolls in ~1% of the manual"
            " baseline's\n"
            "    time and authenticates in ~3%, at comparable memory.\n"
            "    "
        ),
        runner_name="run_table1",
        custom=_tab1_body,
    ),
    ExperimentSpec(
        experiment="fig13a",
        title="Fig. 13a — performance vs channel count (privacy boost)",
        headers=("channels", "accuracy", "trr"),
        description=(
            "Accuracy/TRR vs number of PPG channels (privacy-boost case).\n"
            "\n"
            "    Paper: accuracy increases significantly with the channel"
            " count\n"
            "    while the rejection rate stays roughly flat.\n"
            "    "
        ),
        cases=_fig13a_cases,
        tabulate=_fig13a_tabulate,
    ),
    ExperimentSpec(
        experiment="fig13b",
        title="Fig. 13b — performance of individual channels",
        headers=("channel", "accuracy", "trr"),
        description=(
            "Accuracy/TRR of each individual channel.\n"
            "\n"
            "    Paper: infrared channels authenticate better; red channels"
            " reject\n"
            "    better — the two wavelengths are complementary.\n"
            "    "
        ),
        cases=_fig13b_cases,
        tabulate=_fig13b_tabulate,
    ),
    ExperimentSpec(
        experiment="fig14",
        title="Fig. 14 — impact of third-party dataset size",
        headers=("store size", "accuracy", "trr"),
        description=(
            "Accuracy and TRR vs third-party store size.\n"
            "\n"
            "    Paper: as the store grows from 20 to 300 samples the"
            " rejection\n"
            "    rate rises while authentication accuracy falls (the 9"
            " legitimate\n"
            "    entries get swamped); 100 is the chosen operating point.\n"
            "    "
        ),
        cases=_fig14_cases,
        tabulate=_fig14_tabulate,
    ),
    ExperimentSpec(
        experiment="fig15",
        title="Fig. 15 — impact of the machine-learning model",
        headers=("model", "accuracy", "trr", "wall time (s)"),
        description=(
            "ROCKET+ridge vs ResNet, KNN, and RNN-FNN.\n"
            "\n"
            "    Paper: rocket reaches ~0.96 on the complete test data with"
            " the\n"
            "    shortest computation time; the other models may authenticate"
            " real\n"
            "    users comparably but reject attackers worse.\n"
            "    "
        ),
        custom=_fig15_body,
    ),
    ExperimentSpec(
        experiment="fig16",
        title="Fig. 16 — sampling-rate sweep at four channels (privacy boost)",
        headers=("rate (Hz)", "accuracy", "trr"),
        description=(
            "Privacy-boost performance vs PPG sampling rate, four channels.\n"
            "\n"
            "    Paper: ~68% accuracy at 30 Hz; performance plateaus as the"
            " rate\n"
            "    rises — the system tolerates low-rate commodity sensors.\n"
            "    "
        ),
        cases=_fig16_cases,
        tabulate=_fig16_tabulate,
    ),
    ExperimentSpec(
        experiment="fig17",
        title="Fig. 17 — accuracy over sampling rate x channel count",
        headers=("rate (Hz)", "channels", "accuracy"),
        description=(
            "Accuracy over the sampling rate x channel count grid.\n"
            "\n"
            "    Paper: the system works across the whole grid, and more"
            " channels\n"
            "    damp the run-to-run variation of the model. The full grid"
            " flattens\n"
            "    into one task pool, so ``n_jobs`` workers stay busy across"
            " all\n"
            "    rate x channel combinations at once.\n"
            "    "
        ),
        cases=_fig17_cases,
        tabulate=_fig17_tabulate,
    ),
)

SPECS_BY_ID: Dict[str, ExperimentSpec] = {  # concurrency: immutable-after-init
    spec.experiment: spec for spec in SPECS
}


def run_experiment(
    spec: ExperimentSpec,
    scale: ExperimentScale = DEFAULT,
    *,
    n_jobs: Optional[int] = None,
) -> ExperimentResult:
    """Execute one experiment spec — the single generic runner.

    Sweep-style specs evaluate their case grid through the shared
    flattened case x victim pool; custom specs hand control to their
    body. Either way the result is assembled here, so every figure goes
    through identical machinery.
    """
    data = _study(scale, include_accel=spec.include_accel)
    if spec.custom is not None:
        rows, summary = spec.custom(data, scale, n_jobs)
    else:
        assert spec.cases is not None and spec.tabulate is not None
        cases = spec.cases(scale)
        per_case = _evaluate_cases(data, scale, cases, n_jobs=n_jobs)
        rows, summary = spec.tabulate(cases, per_case)
    return ExperimentResult(
        experiment=spec.experiment,
        title=spec.title,
        headers=spec.headers,
        rows=tuple(rows),
        summary=summary,
    )


def _make_runner(spec: ExperimentSpec) -> Callable[..., ExperimentResult]:
    """A named ``run_*`` wrapper for one spec (keeps the public API)."""

    def runner(
        scale: ExperimentScale = DEFAULT, *, n_jobs: Optional[int] = None
    ) -> ExperimentResult:
        return run_experiment(spec, scale, n_jobs=n_jobs)

    runner.__name__ = spec.name
    runner.__qualname__ = spec.name
    runner.__doc__ = spec.description
    return runner


#: Registry of all experiment runners, keyed by artifact id.
RUNNERS: Dict[str, Callable[..., ExperimentResult]] = {  # concurrency: immutable-after-init
    spec.experiment: _make_runner(spec) for spec in SPECS
}

run_fig8 = RUNNERS["fig8"]
run_fig9 = RUNNERS["fig9"]
run_fig10 = RUNNERS["fig10"]
run_fig11 = RUNNERS["fig11"]
run_fig12 = RUNNERS["fig12"]
run_table1 = RUNNERS["tab1"]
run_fig13a = RUNNERS["fig13a"]
run_fig13b = RUNNERS["fig13b"]
run_fig14 = RUNNERS["fig14"]
run_fig15 = RUNNERS["fig15"]
run_fig16 = RUNNERS["fig16"]
run_fig17 = RUNNERS["fig17"]


def run_all(
    scale: ExperimentScale = DEFAULT, *, n_jobs: Optional[int] = None
) -> List[ExperimentResult]:
    """Run every experiment and return the results in artifact order."""
    return [runner(scale, n_jobs=n_jobs) for runner in RUNNERS.values()]
