"""Time and memory profiling for Table I.

The paper reports wall-clock time and memory for the enrollment and
authentication phases of the ROCKET-based and manual-feature pipelines
(measured there with ``line_profiler``/``memory_profiler``). Here we
use ``time.perf_counter`` for time and ``tracemalloc`` for the peak
Python allocation delta, which captures the same comparison without
external dependencies.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")

#: Highest tracemalloc peak observed since the outermost profiled call
#: started. Nested :func:`profile_call` frames reset the tracer's peak
#: counter to isolate their own allocations; this watermark preserves
#: the pre-reset peak so the outermost frame still reports the true
#: maximum over its whole duration.
_peak_watermark = 0  # concurrency: thread-hostile -- tracemalloc peaks are process-global; profile_call is a single-threaded measurement harness


@dataclass(frozen=True)
class ProfiledRun:
    """Result of a profiled call.

    Attributes:
        seconds: wall-clock duration.
        peak_mib: peak traced memory allocated during the call, MiB.
        result: the call's return value.
    """

    seconds: float
    peak_mib: float
    result: object


def profile_call(fn: Callable[[], T]) -> ProfiledRun:
    """Run ``fn`` once, measuring wall time and peak allocations.

    Reentrant: a ``profile_call`` inside ``fn`` measures its own
    allocation peak *relative to its entry point* and leaves the outer
    measurement intact. (The previous implementation unconditionally
    ``tracemalloc.stop()``-ed on exit, so a nested call silently killed
    the outer trace and the outer frame reported a zero peak.)
    """
    global _peak_watermark
    nested = tracemalloc.is_tracing()
    if nested:
        # Fold the peak reached so far into the watermark, then reset
        # the counter so this frame sees only its own allocations.
        _current, peak = tracemalloc.get_traced_memory()
        _peak_watermark = max(_peak_watermark, peak)
        tracemalloc.reset_peak()
        baseline = tracemalloc.get_traced_memory()[0]
    else:
        tracemalloc.start()
        _peak_watermark = 0
        baseline = 0
    start = time.perf_counter()
    try:
        result = fn()
        seconds = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        if not nested:
            tracemalloc.stop()
    _peak_watermark = max(_peak_watermark, peak)
    if nested:
        peak_bytes = peak - baseline
    else:
        peak_bytes = _peak_watermark
        _peak_watermark = 0
    return ProfiledRun(
        seconds=seconds,
        peak_mib=peak_bytes / (1024.0 * 1024.0),
        result=result,
    )


def time_call(fn: Callable[[], T], repeat: int = 1) -> Tuple[float, T]:
    """Run ``fn`` ``repeat`` times; return (mean seconds, last result)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    total = 0.0
    result: T
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
    return total / repeat, result
