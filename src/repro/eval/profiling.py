"""Time and memory profiling for Table I.

The paper reports wall-clock time and memory for the enrollment and
authentication phases of the ROCKET-based and manual-feature pipelines
(measured there with ``line_profiler``/``memory_profiler``). Here we
use ``time.perf_counter`` for time and ``tracemalloc`` for the peak
Python allocation delta, which captures the same comparison without
external dependencies.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Callable, Tuple, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ProfiledRun:
    """Result of a profiled call.

    Attributes:
        seconds: wall-clock duration.
        peak_mib: peak traced memory allocated during the call, MiB.
        result: the call's return value.
    """

    seconds: float
    peak_mib: float
    result: object


def profile_call(fn: Callable[[], T]) -> ProfiledRun:
    """Run ``fn`` once, measuring wall time and peak allocations."""
    tracemalloc.start()
    start = time.perf_counter()
    try:
        result = fn()
        seconds = time.perf_counter() - start
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return ProfiledRun(
        seconds=seconds, peak_mib=peak / (1024.0 * 1024.0), result=result
    )


def time_call(fn: Callable[[], T], repeat: int = 1) -> Tuple[float, T]:
    """Run ``fn`` ``repeat`` times; return (mean seconds, last result)."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    total = 0.0
    result: T
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        total += time.perf_counter() - start
    return total / repeat, result
