"""Comparison baselines.

`ShangThresholdBaseline` re-implements the manual-feature method the
paper compares against (Fig. 11, Table I): Shang & Wu's wrist-PPG
authentication builds a "strong classifier" from the legitimate user's
data alone — enrolled DTW templates per channel, channel-averaged
distances, and a tuned threshold tau (1.7 in the paper's
re-implementation). Its two weaknesses, which the comparison
reproduces, are threshold sensitivity (accuracy ~0.62 on P2Auth's
keystroke data) and DTW cost (two orders of magnitude slower than the
ROCKET pipeline).

`AccelerometerPipeline` applies the P2Auth feature/classifier stack to
the simultaneously captured accelerometer stream (Fig. 12): the same
learning machinery on a far less informative signal.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.enrollment import WaveformModel
from ..errors import EnrollmentError, NotFittedError
from ..features import ManualFeatureExtractor
from ..types import PinEntryTrial


class ShangThresholdBaseline:
    """Threshold-on-DTW-distance authenticator (manual baseline).

    Args:
        tau: acceptance threshold as a multiple of the mean
            intra-enrollment template distance (the paper tunes the
            absolute threshold to 1.7 on its data; a relative threshold
            is the scale-free equivalent).
        band_fraction: DTW band width.
        dtw_stride: subsampling stride for DTW (cost control).
    """

    def __init__(
        self, tau: float = 1.7, band_fraction: float = 0.1, dtw_stride: int = 1
    ) -> None:
        if tau <= 0:
            raise EnrollmentError(f"tau must be positive, got {tau}")
        self.tau = tau
        self._extractor = ManualFeatureExtractor(
            band_fraction=band_fraction, dtw_stride=dtw_stride
        )
        self._threshold: Optional[float] = None

    def enroll(self, waveforms: np.ndarray) -> "ShangThresholdBaseline":
        """Enroll from legitimate waveforms ``(n, channels, window)``.

        Only legitimate data is used — the method's selling point — so
        the threshold is calibrated from the enrollment samples' own
        distances to the selected template.
        """
        waveforms = np.asarray(waveforms, dtype=np.float64)
        if waveforms.ndim != 3 or waveforms.shape[0] < 2:
            raise EnrollmentError(
                "enrollment needs at least 2 waveforms of shape "
                f"(n, channels, window), got {waveforms.shape}"
            )
        self._extractor.fit(waveforms)
        intra = self._extractor.template_distances(waveforms)
        reference = float(np.mean(intra[intra > 0])) if np.any(intra > 0) else 1e-12
        self._threshold = self.tau * reference
        return self

    def distances(self, waveforms: np.ndarray) -> np.ndarray:
        """Channel-averaged DTW distances to the enrolled template."""
        if self._threshold is None:
            raise NotFittedError("ShangThresholdBaseline.enroll not called")
        return self._extractor.template_distances(np.asarray(waveforms))

    def accepts(self, waveform: np.ndarray) -> bool:
        """Accept iff the distance falls below the tuned threshold."""
        waveform = np.asarray(waveform, dtype=np.float64)
        if waveform.ndim == 2:
            waveform = waveform[np.newaxis]
        return bool(self.distances(waveform)[0] < self._threshold)


def accel_waveform(trial: PinEntryTrial, window: int = 360, margin: int = 30) -> np.ndarray:
    """Fixed accelerometer window around the first reported keystroke.

    Args:
        trial: a trial synthesized with ``include_accel=True``.
        window: output length in accelerometer samples (75 Hz).
        margin: samples kept before the first keystroke.

    Returns:
        Array of shape ``(3, window)``.
    """
    if trial.accel is None:
        raise EnrollmentError("trial has no accelerometer recording")
    accel = trial.accel
    first = min(e.reported_time for e in trial.events)
    start = int(round(first * accel.fs)) - margin
    start = int(np.clip(start, 0, max(0, accel.n_samples - 1)))
    chunk = accel.samples[:, start : start + window]
    if chunk.shape[1] < window:
        chunk = np.pad(chunk, ((0, 0), (0, window - chunk.shape[1])), mode="edge")
    return chunk


class AccelerometerPipeline:
    """ROCKET + ridge over accelerometer windows (Fig. 12 comparison).

    Args:
        num_features: MiniRocket feature budget.
        window: accelerometer window length in samples.
    """

    def __init__(self, num_features: int = 2520, window: int = 360) -> None:
        self.window = window
        # Balanced training: without it the near-featureless accel data
        # degenerates to reject-everything, which would overstate the
        # TRR; balanced, the model genuinely tries to separate and its
        # weak accuracy AND weak rejection both show (as in Fig. 12).
        self._model = WaveformModel(
            feature_method="rocket", num_features=num_features, balanced=True
        )

    def enroll(
        self,
        legit_trials: Sequence[PinEntryTrial],
        third_party_trials: Sequence[PinEntryTrial],
    ) -> "AccelerometerPipeline":
        """Train on accelerometer windows of the given trials."""
        positives = np.stack(
            [accel_waveform(t, self.window) for t in legit_trials]
        )
        negatives = np.stack(
            [accel_waveform(t, self.window) for t in third_party_trials]
        )
        self._model.fit(positives, negatives)
        return self

    def accepts(self, trial: PinEntryTrial) -> bool:
        """Accept/reject one probe trial from its accelerometer data."""
        return self._model.accepts(accel_waveform(trial, self.window))
