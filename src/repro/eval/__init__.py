"""Evaluation harness: metrics, protocol, and per-figure experiments.

`metrics` defines the paper's two headline metrics (authentication
accuracy and true rejection rate). `protocol` implements the Section V
evaluation protocol around one enrolled user. `experiments` has one
runner per table/figure of the paper, `profiling` measures the
time/memory overheads of Table I, and `reporting` renders text tables.
"""

from .bulkenroll import (
    TemplateJob,
    build_template,
    enroll_templates,
    materialize_population,
)
from .featurecache import (
    CacheStats,
    FeatureCache,
    cache_stats,
    clear_default_cache,
    default_cache,
    sharing_enabled,
)
from .metrics import accuracy, equal_error_rate, true_rejection_rate
from .protocol import ConditionResult, UserEvaluation, evaluate_condition, evaluate_user
from .reporting import format_table
from .robustness import (
    ProbeCounts,
    RobustnessCell,
    build_report,
    evaluate_recovery,
    evaluate_robustness_cell,
    render_markdown,
    run_robustness_sweep,
)

__all__ = [
    "CacheStats",
    "ConditionResult",
    "FeatureCache",
    "ProbeCounts",
    "RobustnessCell",
    "TemplateJob",
    "UserEvaluation",
    "accuracy",
    "build_report",
    "build_template",
    "enroll_templates",
    "materialize_population",
    "cache_stats",
    "clear_default_cache",
    "default_cache",
    "equal_error_rate",
    "evaluate_condition",
    "evaluate_recovery",
    "evaluate_robustness_cell",
    "evaluate_user",
    "format_table",
    "render_markdown",
    "run_robustness_sweep",
    "sharing_enabled",
    "true_rejection_rate",
]
