"""Evaluation harness: metrics, protocol, and per-figure experiments.

`metrics` defines the paper's two headline metrics (authentication
accuracy and true rejection rate). `protocol` implements the Section V
evaluation protocol around one enrolled user. `experiments` has one
runner per table/figure of the paper, `profiling` measures the
time/memory overheads of Table I, and `reporting` renders text tables.
"""

from .bulkenroll import (
    TemplateJob,
    build_template,
    enroll_templates,
    materialize_population,
)
from .featurecache import (
    CacheStats,
    FeatureCache,
    cache_stats,
    clear_default_cache,
    default_cache,
    sharing_enabled,
)
from .metrics import accuracy, equal_error_rate, true_rejection_rate
from .protocol import ConditionResult, UserEvaluation, evaluate_condition, evaluate_user
from .reporting import format_table
from .robustness import (
    MITIGATION_POLICIES,
    ProbeCounts,
    RobustnessCell,
    ScenarioCell,
    build_report,
    build_scenario_report,
    evaluate_recovery,
    evaluate_robustness_cell,
    evaluate_scenario_cell,
    render_markdown,
    render_scenario_markdown,
    run_mitigation_sweep,
    run_robustness_sweep,
    run_scenario_sweep,
    template_age,
)

__all__ = [
    "CacheStats",
    "ConditionResult",
    "FeatureCache",
    "MITIGATION_POLICIES",
    "ProbeCounts",
    "RobustnessCell",
    "ScenarioCell",
    "TemplateJob",
    "UserEvaluation",
    "accuracy",
    "build_report",
    "build_scenario_report",
    "build_template",
    "enroll_templates",
    "materialize_population",
    "cache_stats",
    "clear_default_cache",
    "default_cache",
    "equal_error_rate",
    "evaluate_condition",
    "evaluate_recovery",
    "evaluate_robustness_cell",
    "evaluate_scenario_cell",
    "evaluate_user",
    "format_table",
    "render_markdown",
    "render_scenario_markdown",
    "run_mitigation_sweep",
    "run_robustness_sweep",
    "run_scenario_sweep",
    "sharing_enabled",
    "template_age",
    "true_rejection_rate",
]
