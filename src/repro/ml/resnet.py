"""A small 1-D residual convolutional network (Fig. 15 "Resnet").

Implemented entirely in numpy with manual backpropagation — no deep
learning framework is available in this environment, and none is
needed at this scale. The architecture is a single residual block over
the raw (downsampled) multichannel series:

.. code-block:: text

    x -> conv(k=7) -> ReLU -> conv(k=5) --+--> ReLU -> GAP -> linear -> logit
     \\------------- 1x1 conv ------------/

trained with Adam on the class-weighted logistic loss. Class weighting
matters: with ~9 positive and ~100 negative samples an unweighted net
degenerates to the majority class, while the weighted one reproduces
the paper's observation that the neural baselines authenticate real
users well but reject attackers worse than the ridge/ROCKET pipeline.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import NotFittedError
from .base import check_xy


def _sliding_windows(x: np.ndarray, kernel: int) -> np.ndarray:
    """Same-padded sliding windows: (N, C, L) -> (N, C, L, kernel)."""
    pad = kernel // 2
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad)))
    return np.lib.stride_tricks.sliding_window_view(xp, kernel, axis=2)


def _conv_forward(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Same-padded 1-D convolution: (N,Cin,L) x (F,Cin,K) -> (N,F,L)."""
    windows = _sliding_windows(x, w.shape[2])
    return np.einsum("nclk,fck->nfl", windows, w, optimize=True)


def _conv_backward_weights(
    dz: np.ndarray, x: np.ndarray, kernel: int
) -> np.ndarray:
    """Gradient of the conv weights: (N,F,L), (N,Cin,L) -> (F,Cin,K)."""
    windows = _sliding_windows(x, kernel)
    return np.einsum("nfl,nclk->fck", dz, windows, optimize=True)


def _conv_backward_input(dz: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Gradient w.r.t. the conv input: (N,F,L) x (F,Cin,K) -> (N,Cin,L)."""
    w_flipped = w[:, :, ::-1]
    windows = _sliding_windows(dz, w.shape[2])
    return np.einsum("nflk,fck->ncl", windows, w_flipped, optimize=True)


def _downsample(x: np.ndarray, max_length: int) -> np.ndarray:
    """Mean-pool the time axis down to at most ``max_length`` samples."""
    length = x.shape[2]
    factor = max(1, int(np.ceil(length / max_length)))
    if factor == 1:
        return x
    trimmed = length - (length % factor)
    pooled = x[:, :, :trimmed].reshape(x.shape[0], x.shape[1], -1, factor)
    return pooled.mean(axis=3)


class _Adam:
    """Minimal Adam optimizer over a dict of named parameters."""

    def __init__(self, params: Dict[str, np.ndarray], lr: float) -> None:
        self.lr = lr
        self.m = {k: np.zeros_like(v) for k, v in params.items()}
        self.v = {k: np.zeros_like(v) for k, v in params.items()}
        self.t = 0

    def step(
        self, params: Dict[str, np.ndarray], grads: Dict[str, np.ndarray]
    ) -> None:
        self.t += 1
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for key, grad in grads.items():
            self.m[key] = beta1 * self.m[key] + (1 - beta1) * grad
            self.v[key] = beta2 * self.v[key] + (1 - beta2) * grad ** 2
            m_hat = self.m[key] / (1 - beta1 ** self.t)
            v_hat = self.v[key] / (1 - beta2 ** self.t)
            params[key] -= self.lr * m_hat / (np.sqrt(v_hat) + eps)


class ResNet1DClassifier:
    """Residual 1-D CNN binary classifier on raw series.

    Args:
        filters: channel width of the residual block.
        epochs: full-batch training epochs.
        lr: Adam learning rate.
        max_length: series are mean-pooled to at most this length.
        seed: weight-initialization seed.
        class_weight_balanced: reweight the loss so both classes
            contribute equally regardless of imbalance.
    """

    def __init__(
        self,
        filters: int = 8,
        epochs: int = 60,
        lr: float = 0.01,
        max_length: int = 160,
        seed: int = 0,
        class_weight_balanced: bool = True,
    ) -> None:
        if filters < 1 or epochs < 1 or max_length < 8:
            raise ValueError("invalid ResNet hyperparameters")
        self.filters = filters
        self.epochs = epochs
        self.lr = lr
        self.max_length = max_length
        self.seed = seed
        self.class_weight_balanced = class_weight_balanced
        self._params: Optional[Dict[str, np.ndarray]] = None
        self._norm: Optional[Dict[str, np.ndarray]] = None

    def _prepare(self, x: np.ndarray, fit_norm: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        x = _downsample(x, self.max_length)
        if fit_norm:
            mean = x.mean(axis=(0, 2), keepdims=True)
            std = x.std(axis=(0, 2), keepdims=True)
            # reprolint: disable-next=RL005 -- exact zero-variance sentinel, not a tolerance
            std[std == 0.0] = 1.0
            self._norm = {"mean": mean, "std": std}
        if self._norm is None:
            raise NotFittedError("ResNet1DClassifier.fit has not been called")
        return (x - self._norm["mean"]) / self._norm["std"]

    def _forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        p = self._params
        z1 = _conv_forward(x, p["w1"]) + p["b1"][np.newaxis, :, np.newaxis]
        a1 = np.maximum(z1, 0.0)
        z2 = _conv_forward(a1, p["w2"]) + p["b2"][np.newaxis, :, np.newaxis]
        skip = _conv_forward(x, p["wp"])
        r = np.maximum(z2 + skip, 0.0)
        pooled = r.mean(axis=2)
        logit = pooled @ p["wd"] + p["bd"]
        return {
            "x": x, "z1": z1, "a1": a1, "z2": z2, "skip": skip,
            "r": r, "pooled": pooled, "logit": logit,
        }

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ResNet1DClassifier":
        """Train on raw series ``x`` and labels ``y`` in {-1, +1}."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        _flat = x.reshape(x.shape[0], -1)
        _flat, y = check_xy(_flat, y)
        xs = self._prepare(x, fit_norm=True)
        n, cin, _length = xs.shape

        rng = np.random.default_rng(self.seed)
        f = self.filters

        def init(shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
            return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)

        self._params = {
            "w1": init((f, cin, 7), cin * 7),
            "b1": np.zeros(f),
            "w2": init((f, f, 5), f * 5),
            "b2": np.zeros(f),
            "wp": init((f, cin, 1), cin),
            "wd": init((f,), f),
            "bd": np.zeros(()),
        }

        if self.class_weight_balanced:
            pos = max(1, int(np.sum(y > 0)))
            neg = max(1, int(np.sum(y < 0)))
            weights = np.where(y > 0, n / (2.0 * pos), n / (2.0 * neg))
        else:
            weights = np.ones(n)

        optimizer = _Adam(self._params, self.lr)
        for _epoch in range(self.epochs):
            cache = self._forward(xs)
            margin = y * cache["logit"]
            sig = 1.0 / (1.0 + np.exp(np.clip(margin, -30, 30)))
            dlogit = -(y * sig * weights) / n

            pooled = cache["pooled"]
            grads = {
                "wd": pooled.T @ dlogit,
                "bd": np.sum(dlogit),
            }
            dr = (
                dlogit[:, np.newaxis, np.newaxis]
                * self._params["wd"][np.newaxis, :, np.newaxis]
                / xs.shape[2]
            ) * np.ones_like(cache["r"])
            dr = dr * (cache["r"] > 0)

            grads["w2"] = _conv_backward_weights(dr, cache["a1"], 5)
            grads["b2"] = dr.sum(axis=(0, 2))
            grads["wp"] = _conv_backward_weights(dr, cache["x"], 1)
            da1 = _conv_backward_input(dr, self._params["w2"])
            da1 = da1 * (cache["z1"] > 0)
            grads["w1"] = _conv_backward_weights(da1, cache["x"], 7)
            grads["b1"] = da1.sum(axis=(0, 2))

            optimizer.step(self._params, grads)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Logit per row; positive means the legitimate class."""
        if self._params is None:
            raise NotFittedError("ResNet1DClassifier.fit has not been called")
        xs = self._prepare(np.asarray(x, dtype=np.float64), fit_norm=False)
        return self._forward(xs)["logit"]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        return np.where(self.decision_function(x) > 0.0, 1.0, -1.0)
