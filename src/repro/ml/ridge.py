"""Ridge-regression binary classifier with leave-one-out CV (Eq. 7-9).

The paper classifies MiniRocket feature vectors "using a ridge
regression classifier with cross-validation". This implementation
follows the standard efficient scheme: regression against ±1 targets,
L2 penalty selected by exact leave-one-out cross-validation computed in
closed form from the eigendecomposition of the (centered) Gram matrix,
which costs no more than a single fit. The Gram formulation is chosen
because the MiniRocket regime has far more features (~10K) than
training samples (~10-400).

For a given alpha, with centered features :math:`X_c` and centered
targets :math:`y_c`:

- dual coefficients: :math:`a = (K + \\alpha I)^{-1} y_c` with
  :math:`K = X_c X_c^T`;
- primal weights: :math:`w = X_c^T a` (Eq. 7's parameter vector);
- hat diagonal: :math:`h_{ii} = \\sum_k Q_{ik}^2
  \\lambda_k / (\\lambda_k + \\alpha)` from :math:`K = Q \\Lambda Q^T`;
- LOO residuals: :math:`e_i = (y_{c,i} - \\hat{y}_i) / (1 - h_{ii})`.

The decision rule is Eq. 9: accept iff :math:`w \\cdot x + b > 0`.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..errors import NotFittedError
from .base import check_xy

#: Default alpha grid, matching the common RidgeClassifierCV setting of
#: ten logarithmically spaced values in [1e-3, 1e3].
DEFAULT_ALPHAS: tuple = tuple(np.logspace(-3, 3, 10))


class RidgeClassifier:
    """Binary ridge classifier with built-in LOO-CV alpha selection.

    Args:
        alphas: candidate regularization strengths; the one minimizing
            the exact leave-one-out squared error is selected.

    Attributes (after fit):
        alpha_: the selected regularization strength.
        coef_: weight vector ``w`` of Eq. 7.
        intercept_: offset ``b`` of Eq. 7.
    """

    def __init__(self, alphas: Sequence[float] = DEFAULT_ALPHAS) -> None:
        alphas = tuple(float(a) for a in alphas)
        if not alphas or any(a <= 0 for a in alphas):
            raise ValueError(f"alphas must be positive and non-empty: {alphas}")
        self.alphas = alphas
        self.alpha_: Optional[float] = None
        self.coef_: Optional[np.ndarray] = None
        self.intercept_: Optional[float] = None

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "RidgeClassifier":
        """Fit on features ``x`` and labels ``y`` in {-1, +1}.

        Args:
            x: feature matrix.
            y: labels in {-1, +1}.
            sample_weight: optional per-sample weights. Weighted ridge
                is solved by the usual row-scaling reduction: center
                with the weighted means, scale rows by sqrt(weight),
                then proceed as in the unweighted case.
        """
        x, y = check_xy(x, y)
        n = x.shape[0]

        if sample_weight is None:
            x_mean = x.mean(axis=0)
            y_mean = float(y.mean())
            xc = x - x_mean
            yc = y - y_mean
        else:
            w = np.asarray(sample_weight, dtype=np.float64).ravel()
            if w.shape[0] != n or np.any(w < 0) or w.sum() <= 0:
                raise ValueError("sample_weight must be non-negative, same length")
            w = w * (n / w.sum())
            x_mean = (w[:, np.newaxis] * x).sum(axis=0) / n
            y_mean = float((w * y).sum() / n)
            sqrt_w = np.sqrt(w)
            xc = sqrt_w[:, np.newaxis] * (x - x_mean)
            yc = sqrt_w * (y - y_mean)

        gram = xc @ xc.T
        eigvals, eigvecs = np.linalg.eigh(gram)
        eigvals = np.clip(eigvals, 0.0, None)
        qty = eigvecs.T @ yc  # rotated targets
        q_sq = eigvecs ** 2

        best_alpha = self.alphas[0]
        best_loo = np.inf
        for alpha in self.alphas:
            # Stable LOO residuals in the dual form:
            #   e_i = [(K + aI)^-1 yc]_i / [(K + aI)^-1]_ii.
            # The naive (yc - yhat) / (1 - h_ii) form is algebraically
            # identical but cancels catastrophically at small alpha.
            inv_shrink = 1.0 / (eigvals + alpha)
            dual = eigvecs @ (inv_shrink * qty)
            m_diag = q_sq @ inv_shrink
            loo = float(np.mean((dual / np.clip(m_diag, 1e-300, None)) ** 2))
            if loo < best_loo:
                best_loo = loo
                best_alpha = alpha

        shrink = 1.0 / (eigvals + best_alpha)
        dual = eigvecs @ (shrink * qty)
        self.coef_ = xc.T @ dual
        self.intercept_ = float(y_mean - x_mean @ self.coef_)
        self.alpha_ = float(best_alpha)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed score ``w . x + b`` per row (Eq. 7)."""
        if self.coef_ is None or self.intercept_ is None:
            raise NotFittedError("RidgeClassifier.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        return x @ self.coef_ + self.intercept_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Eq. 9: +1 (success) where the score is positive, else -1."""
        scores = self.decision_function(x)
        return np.where(scores > 0.0, 1.0, -1.0)
