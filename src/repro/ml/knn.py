"""k-nearest-neighbour classifier (Fig. 15 comparison model)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NotFittedError
from .base import check_xy


class KNNClassifier:
    """k-NN over Euclidean distance in feature space.

    Args:
        k: number of neighbours. Ties are impossible with odd ``k``;
            with even ``k`` the positive class wins ties (scores of
            exactly zero are mapped to +1 by the sign convention).

    The decision function is the mean label of the ``k`` nearest
    neighbours, a value in [-1, +1]; zero is the natural threshold.
    """

    def __init__(self, k: int = 5) -> None:
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._x: Optional[np.ndarray] = None
        self._y: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        """Memorize the training set."""
        x, y = check_xy(x, y)
        self._x = x
        self._y = y
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Mean neighbour label per row, in [-1, +1]."""
        if self._x is None or self._y is None:
            raise NotFittedError("KNNClassifier.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 1:
            x = x[np.newaxis, :]
        k = min(self.k, self._x.shape[0])
        # Squared Euclidean distances via the expansion trick.
        d2 = (
            np.sum(x ** 2, axis=1)[:, np.newaxis]
            - 2.0 * (x @ self._x.T)
            + np.sum(self._x ** 2, axis=1)[np.newaxis, :]
        )
        neighbour_idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        return self._y[neighbour_idx].mean(axis=1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Majority vote in {-1, +1}."""
        scores = self.decision_function(x)
        return np.where(scores >= 0.0, 1.0, -1.0)
