"""Machine-learning models implemented from scratch on numpy.

`ridge` is the paper's classifier: a binary ridge-regression classifier
with built-in leave-one-out cross-validation over the regularization
strength (Eq. 7-9). `knn`, `resnet`, and `rnn` are the comparison
models of Fig. 15, and `scaling` provides feature standardization.
"""

from .base import BinaryClassifier
from .knn import KNNClassifier
from .platt import PlattScaler
from .resnet import ResNet1DClassifier
from .ridge import RidgeClassifier
from .rnn import RNNFNNClassifier
from .scaling import StandardScaler

__all__ = [
    "BinaryClassifier",
    "KNNClassifier",
    "PlattScaler",
    "ResNet1DClassifier",
    "RidgeClassifier",
    "RNNFNNClassifier",
    "StandardScaler",
]
