"""Platt scaling: turning classifier scores into probabilities.

The paper's decision rule is a hard sign threshold (Eq. 9). A deployed
system usually wants a *confidence* with each decision — for step-up
authentication policies, logging, or fusing with other factors. Platt
scaling fits a one-dimensional logistic regression

.. math::

    P(\\text{legit} \\mid s) = \\sigma(a s + b)

to held-out (score, label) pairs by Newton-Raphson on the regularized
log-likelihood. With the ridge classifier's scores this is cheap,
monotone (so it never changes the ranking), and well calibrated in the
regions the data covers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NotFittedError
from .base import check_xy


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35.0, 35.0)))


class PlattScaler:
    """Logistic calibration of 1-D scores.

    Args:
        max_iter: Newton iterations.
        l2: regularization on (a, b); keeps the fit finite when the
            scores are perfectly separable (common at small n).

    Usage::

        scaler = PlattScaler().fit(scores, labels)   # labels in {-1,+1}
        p = scaler.predict_proba(new_scores)          # P(legit)
    """

    def __init__(self, max_iter: int = 50, l2: float = 1e-4) -> None:
        if max_iter < 1 or l2 < 0:
            raise ValueError("invalid PlattScaler hyperparameters")
        self.max_iter = max_iter
        self.l2 = l2
        self.a_: Optional[float] = None
        self.b_: Optional[float] = None

    def fit(self, scores: np.ndarray, y: np.ndarray) -> "PlattScaler":
        """Fit the two logistic parameters.

        Args:
            scores: raw classifier scores, shape ``(n,)``.
            y: labels in {-1, +1}.
        """
        scores = np.asarray(scores, dtype=np.float64).ravel()
        _x, y = check_xy(scores[:, np.newaxis], y)
        targets = (y + 1.0) / 2.0  # {0, 1}

        # Platt's target smoothing guards against overconfidence when
        # one class is tiny.
        n_pos = float(np.sum(targets))
        n_neg = float(targets.size - n_pos)
        hi = (n_pos + 1.0) / (n_pos + 2.0)
        lo = 1.0 / (n_neg + 2.0)
        t = np.where(targets > 0.5, hi, lo)

        a, b = 1.0, 0.0
        for _ in range(self.max_iter):
            z = a * scores + b
            p = _sigmoid(z)
            w = np.clip(p * (1.0 - p), 1e-12, None)
            grad_a = float(np.sum((p - t) * scores)) + self.l2 * a
            grad_b = float(np.sum(p - t)) + self.l2 * b
            h_aa = float(np.sum(w * scores * scores)) + self.l2
            h_ab = float(np.sum(w * scores))
            h_bb = float(np.sum(w)) + self.l2
            det = h_aa * h_bb - h_ab * h_ab
            if abs(det) < 1e-18:
                break
            da = (h_bb * grad_a - h_ab * grad_b) / det
            db = (h_aa * grad_b - h_ab * grad_a) / det
            a -= da
            b -= db
            if abs(da) < 1e-10 and abs(db) < 1e-10:
                break
        self.a_, self.b_ = float(a), float(b)
        return self

    def predict_proba(self, scores: np.ndarray) -> np.ndarray:
        """P(legit) for each score."""
        if self.a_ is None or self.b_ is None:
            raise NotFittedError("PlattScaler.fit has not been called")
        scores = np.asarray(scores, dtype=np.float64).ravel()
        return _sigmoid(self.a_ * scores + self.b_)
