"""Common estimator protocol for the binary classifiers.

Every model in this package is a binary classifier over labels
``{-1, +1}`` (legitimate user = +1), mirroring Eq. 9 of the paper:
``F = 1`` means success, ``F = -1`` failure.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class BinaryClassifier(Protocol):
    """Structural interface shared by all classifiers in this package."""

    def fit(self, x: np.ndarray, y: np.ndarray) -> "BinaryClassifier":
        """Train on feature matrix ``x`` and labels ``y`` in {-1, +1}."""
        ...

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed score per row; positive means the legitimate class."""
        ...

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        ...


def check_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Validate a training pair and normalize dtypes.

    Returns:
        ``(x, y)`` as float64 arrays; ``y`` strictly in {-1, +1}.

    Raises:
        ValueError: on shape mismatch, empty data, or bad labels.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64).ravel()
    if x.ndim < 2:
        raise ValueError(f"x must be at least 2-D, got shape {x.shape}")
    if x.shape[0] != y.shape[0]:
        raise ValueError(
            f"x has {x.shape[0]} rows but y has {y.shape[0]} labels"
        )
    if x.shape[0] == 0:
        raise ValueError("empty training set")
    labels = set(np.unique(y))
    if not labels <= {-1.0, 1.0}:
        raise ValueError(f"labels must be in {{-1, +1}}, got {sorted(labels)}")
    if len(labels) < 2:
        raise ValueError("training set must contain both classes")
    return x, y
