"""Feature standardization."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import NotFittedError


class StandardScaler:
    """Column-wise standardization to zero mean, unit variance.

    Constant columns are left at zero variance and scaled by 1 so they
    standardize to zero instead of dividing by zero.
    """

    def __init__(self) -> None:
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Learn column means and standard deviations."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {x.shape}")
        self._mean = x.mean(axis=0)
        scale = x.std(axis=0)
        # reprolint: disable-next=RL005 -- exact zero-variance sentinel, not a tolerance
        scale[scale == 0.0] = 1.0
        self._scale = scale
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Standardize ``x`` with the learned statistics."""
        if self._mean is None or self._scale is None:
            raise NotFittedError("StandardScaler.fit has not been called")
        x = np.asarray(x, dtype=np.float64)
        return (x - self._mean) / self._scale

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its standardized values."""
        return self.fit(x).transform(x)
