"""RNN-FNN binary classifier (Fig. 15 comparison model).

A vanilla tanh recurrent network reads the (downsampled) multichannel
series step by step; the final hidden state feeds a one-hidden-layer
feed-forward head producing the logit. Training is full backpropagation
through time in numpy with Adam on the class-weighted logistic loss.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import NotFittedError
from .base import check_xy
from .resnet import _Adam, _downsample


class RNNFNNClassifier:
    """tanh-RNN encoder + feed-forward head.

    Args:
        hidden: recurrent state size.
        ffn_hidden: feed-forward head width.
        epochs: full-batch training epochs.
        lr: Adam learning rate.
        max_steps: series are mean-pooled to at most this many steps.
        seed: weight-initialization seed.
        class_weight_balanced: reweight the loss for class imbalance.
    """

    def __init__(
        self,
        hidden: int = 16,
        ffn_hidden: int = 16,
        epochs: int = 80,
        lr: float = 0.01,
        max_steps: int = 60,
        seed: int = 0,
        class_weight_balanced: bool = True,
    ) -> None:
        if hidden < 1 or ffn_hidden < 1 or epochs < 1 or max_steps < 2:
            raise ValueError("invalid RNN hyperparameters")
        self.hidden = hidden
        self.ffn_hidden = ffn_hidden
        self.epochs = epochs
        self.lr = lr
        self.max_steps = max_steps
        self.seed = seed
        self.class_weight_balanced = class_weight_balanced
        self._params: Optional[Dict[str, np.ndarray]] = None
        self._norm: Optional[Dict[str, np.ndarray]] = None

    def _prepare(self, x: np.ndarray, fit_norm: bool) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        x = _downsample(x, self.max_steps)
        if fit_norm:
            mean = x.mean(axis=(0, 2), keepdims=True)
            std = x.std(axis=(0, 2), keepdims=True)
            # reprolint: disable-next=RL005 -- exact zero-variance sentinel, not a tolerance
            std[std == 0.0] = 1.0
            self._norm = {"mean": mean, "std": std}
        if self._norm is None:
            raise NotFittedError("RNNFNNClassifier.fit has not been called")
        return (x - self._norm["mean"]) / self._norm["std"]

    def _forward(self, x: np.ndarray) -> Dict[str, np.ndarray]:
        p = self._params
        n, _cin, steps = x.shape
        h = np.zeros((n, self.hidden))
        states = [h]
        pre_acts = []
        for t in range(steps):
            pre = x[:, :, t] @ p["wxh"] + h @ p["whh"] + p["bh"]
            h = np.tanh(pre)
            pre_acts.append(pre)
            states.append(h)
        z1 = h @ p["w1"] + p["b1"]
        a1 = np.maximum(z1, 0.0)
        logit = a1 @ p["w2"] + p["b2"]
        return {
            "x": x, "states": states, "pre_acts": pre_acts,
            "z1": z1, "a1": a1, "logit": logit,
        }

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RNNFNNClassifier":
        """Train on raw series ``x`` and labels ``y`` in {-1, +1}."""
        x = np.asarray(x, dtype=np.float64)
        if x.ndim == 2:
            x = x[:, np.newaxis, :]
        _flat = x.reshape(x.shape[0], -1)
        _flat, y = check_xy(_flat, y)
        xs = self._prepare(x, fit_norm=True)
        n, cin, steps = xs.shape

        rng = np.random.default_rng(self.seed)
        h, f = self.hidden, self.ffn_hidden

        def init(shape: Tuple[int, ...], fan_in: int) -> np.ndarray:
            return rng.normal(0.0, np.sqrt(1.0 / fan_in), size=shape)

        self._params = {
            "wxh": init((cin, h), cin),
            "whh": init((h, h), h),
            "bh": np.zeros(h),
            "w1": init((h, f), h),
            "b1": np.zeros(f),
            "w2": init((f,), f),
            "b2": np.zeros(()),
        }

        if self.class_weight_balanced:
            pos = max(1, int(np.sum(y > 0)))
            neg = max(1, int(np.sum(y < 0)))
            weights = np.where(y > 0, n / (2.0 * pos), n / (2.0 * neg))
        else:
            weights = np.ones(n)

        optimizer = _Adam(self._params, self.lr)
        for _epoch in range(self.epochs):
            cache = self._forward(xs)
            margin = y * cache["logit"]
            sig = 1.0 / (1.0 + np.exp(np.clip(margin, -30, 30)))
            dlogit = -(y * sig * weights) / n

            grads = {
                "w2": cache["a1"].T @ dlogit,
                "b2": np.sum(dlogit),
            }
            da1 = np.outer(dlogit, self._params["w2"]) * (cache["z1"] > 0)
            grads["w1"] = cache["states"][-1].T @ da1
            grads["b1"] = da1.sum(axis=0)

            dh = da1 @ self._params["w1"].T
            grads["wxh"] = np.zeros_like(self._params["wxh"])
            grads["whh"] = np.zeros_like(self._params["whh"])
            grads["bh"] = np.zeros_like(self._params["bh"])
            for t in range(steps - 1, -1, -1):
                dpre = dh * (1.0 - cache["states"][t + 1] ** 2)
                grads["wxh"] += xs[:, :, t].T @ dpre
                grads["whh"] += cache["states"][t].T @ dpre
                grads["bh"] += dpre.sum(axis=0)
                dh = dpre @ self._params["whh"].T

            optimizer.step(self._params, grads)
        return self

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Logit per row; positive means the legitimate class."""
        if self._params is None:
            raise NotFittedError("RNNFNNClassifier.fit has not been called")
        xs = self._prepare(np.asarray(x, dtype=np.float64), fit_norm=False)
        return self._forward(xs)["logit"]

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted labels in {-1, +1}."""
        return np.where(self.decision_function(x) > 0.0, 1.0, -1.0)
