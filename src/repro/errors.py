"""Exception hierarchy for the P2Auth reproduction.

Every error raised by this package derives from :class:`P2AuthError`, so
callers can catch one type at an API boundary. Subclasses distinguish
configuration mistakes from runtime signal/authentication failures.

Service contract
----------------

Every class carries a stable, machine-readable ``code`` — the string a
transport adapter puts in its error payloads — and
:data:`HTTP_STATUS_BY_ERROR` is the one canonical error→HTTP mapping
(``repro.service.http`` consumes it; nothing else defines statuses).
Codes and the mapping are part of the public API: tests pin that the
mapping is exhaustive over the taxonomy and that no subclass falls
through to 500 by accident (see ``tests/test_errors.py``).
"""

from __future__ import annotations

import math
from typing import ClassVar, Dict, Optional, Type


class P2AuthError(Exception):
    """Base class for all errors raised by the ``repro`` package."""

    #: Stable machine-readable identifier for transport error payloads.
    code: ClassVar[str] = "internal"


class ConfigurationError(P2AuthError):
    """An invalid parameter was supplied to a simulator or pipeline stage."""

    code: ClassVar[str] = "bad_request"


class SignalError(P2AuthError):
    """A signal-processing stage received data it cannot process.

    Examples: an empty recording, a window larger than the signal, or a
    sampling rate mismatch between recording and pipeline configuration.
    """

    code: ClassVar[str] = "bad_signal"


class SegmentationError(SignalError):
    """Keystroke segmentation could not produce a valid waveform window."""

    code: ClassVar[str] = "segmentation_failed"


class QualityError(SignalError):
    """A recording failed the signal-quality gate.

    Raised by the degradation policy when a trial is too damaged to
    score — not enough usable channels, a missing-sample gap beyond the
    repair budget, or keystroke artifacts invisible over the noise
    floor. Distinct from a *rejection*: the system refuses to make a
    biometric decision at all rather than decide on garbage.
    """

    code: ClassVar[str] = "quality_refused"


class EnrollmentError(P2AuthError):
    """User enrollment failed (e.g. too few samples to train a model)."""

    code: ClassVar[str] = "enrollment_failed"


class PersistenceError(EnrollmentError):
    """An enrolled model cannot be serialized or deserialized.

    Raised by :mod:`repro.core.persistence` when an archive operation is
    asked to handle a configuration outside the deployable rocket+ridge
    combination (e.g. the manual-feature baseline or a custom
    classifier), naming the unsupported ``(feature_method, classifier)``
    pair. Subclasses :class:`EnrollmentError` because the remedy is the
    same — re-enroll under a serializable configuration.
    """

    code: ClassVar[str] = "persistence_failed"


class AuthenticationError(P2AuthError):
    """An authentication request was malformed (not a mere rejection).

    A *rejected* attempt is a normal outcome and is reported through
    :class:`repro.core.authentication.AuthDecision`; this exception is for
    requests the system cannot evaluate at all, such as a trial whose PPG
    recording does not cover the keystroke timestamps.
    """

    code: ClassVar[str] = "auth_request_invalid"


class UnknownUserError(AuthenticationError):
    """A request named a user id the registry does not know."""

    code: ClassVar[str] = "unknown_user"


class LockoutError(AuthenticationError):
    """The retry ladder has locked the session.

    Sticky: the session stays locked until the deployment's fallback
    authentication path calls :meth:`~repro.core.session.SessionManager.unlock`.
    ``retry_after_s`` is therefore unbounded (``math.inf``) — transports
    translate it to a 429 without a finite ``Retry-After``.
    """

    code: ClassVar[str] = "locked_out"

    def __init__(self, message: str, retry_after_s: float = math.inf) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class BackoffError(AuthenticationError):
    """An entry arrived inside a retry backoff window.

    Transient: the same request succeeds once ``retry_after_s`` seconds
    have elapsed. Transports translate it to a 429 with a finite
    ``Retry-After`` header.
    """

    code: ClassVar[str] = "retry_backoff"

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ProtocolError(P2AuthError):
    """A wire request failed strict protocol validation.

    Raised by :mod:`repro.service.protocol` for malformed bodies:
    missing or unknown fields, wrong types, undecodable payloads.
    """

    code: ClassVar[str] = "protocol_error"


class ProofError(P2AuthError):
    """A PIN proof or enrollment window check failed.

    Covers a wrong HMAC proof during enrollment, a reused or expired
    enrollment window, and a stale/replayed nonce. Deliberately carries
    no detail about *which* check failed beyond the message — the wire
    error must not help an attacker distinguish "wrong PIN" from
    "expired window".
    """

    code: ClassVar[str] = "proof_rejected"


class NotFittedError(P2AuthError):
    """A model or transform was used before :meth:`fit` was called."""

    code: ClassVar[str] = "not_fitted"


class ConcurrencyError(P2AuthError):
    """A lock-discipline invariant was violated at runtime.

    Raised only under ``REPRO_CONCURRENCY_DEBUG=1`` (see
    :mod:`repro.concurrency`), when state declared ``guarded-by`` a lock
    is touched by a thread that does not hold that lock. In production
    the checks compile away to plain :class:`threading.RLock` usage.
    """

    code: ClassVar[str] = "concurrency_violation"


#: The canonical error→HTTP mapping. One table, consumed by every
#: transport adapter; resolution walks the exception MRO so a subclass
#: without its own row inherits its parent's status (pinned exhaustive
#: over the taxonomy by ``tests/test_errors.py``).
#:
#: Semantics: client mistakes are 4xx — malformed requests 400, unknown
#: users 404, failed proofs 403, unusable-but-well-formed signals 422
#: ("refused, retry with a cleaner capture"), throttling 429 — while
#: anything the client cannot fix by changing the request is a 500.
HTTP_STATUS_BY_ERROR: Dict[Type[P2AuthError], int] = {  # concurrency: immutable-after-init
    P2AuthError: 500,
    ConfigurationError: 400,
    ProtocolError: 400,
    ProofError: 403,
    SignalError: 422,
    SegmentationError: 422,
    QualityError: 422,
    EnrollmentError: 422,
    PersistenceError: 500,
    AuthenticationError: 400,
    UnknownUserError: 404,
    LockoutError: 429,
    BackoffError: 429,
    NotFittedError: 500,
    ConcurrencyError: 500,
}


def http_status_for(exc_type: Type[BaseException]) -> int:
    """The HTTP status for an error class, by MRO resolution.

    Walks the class's MRO until a :data:`HTTP_STATUS_BY_ERROR` row
    matches, so third-party subclasses inherit the nearest ancestor's
    status. Non-``P2AuthError`` types resolve to 500 (internal).
    """
    for base in exc_type.__mro__:
        if base in HTTP_STATUS_BY_ERROR:
            return HTTP_STATUS_BY_ERROR[base]
    return 500


def retry_after_s(exc: BaseException) -> Optional[float]:
    """The machine-readable retry delay an error carries, if any.

    Finite for :class:`BackoffError` (transports emit ``Retry-After``),
    ``None`` for indefinite lockouts and for errors without a delay.
    """
    delay = getattr(exc, "retry_after_s", None)
    if delay is None or not math.isfinite(delay):
        return None
    return float(delay)
