"""Exception hierarchy for the P2Auth reproduction.

Every error raised by this package derives from :class:`P2AuthError`, so
callers can catch one type at an API boundary. Subclasses distinguish
configuration mistakes from runtime signal/authentication failures.
"""

from __future__ import annotations


class P2AuthError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(P2AuthError):
    """An invalid parameter was supplied to a simulator or pipeline stage."""


class SignalError(P2AuthError):
    """A signal-processing stage received data it cannot process.

    Examples: an empty recording, a window larger than the signal, or a
    sampling rate mismatch between recording and pipeline configuration.
    """


class SegmentationError(SignalError):
    """Keystroke segmentation could not produce a valid waveform window."""


class QualityError(SignalError):
    """A recording failed the signal-quality gate.

    Raised by the degradation policy when a trial is too damaged to
    score — not enough usable channels, a missing-sample gap beyond the
    repair budget, or keystroke artifacts invisible over the noise
    floor. Distinct from a *rejection*: the system refuses to make a
    biometric decision at all rather than decide on garbage.
    """


class EnrollmentError(P2AuthError):
    """User enrollment failed (e.g. too few samples to train a model)."""


class PersistenceError(EnrollmentError):
    """An enrolled model cannot be serialized or deserialized.

    Raised by :mod:`repro.core.persistence` when an archive operation is
    asked to handle a configuration outside the deployable rocket+ridge
    combination (e.g. the manual-feature baseline or a custom
    classifier), naming the unsupported ``(feature_method, classifier)``
    pair. Subclasses :class:`EnrollmentError` because the remedy is the
    same — re-enroll under a serializable configuration.
    """


class AuthenticationError(P2AuthError):
    """An authentication request was malformed (not a mere rejection).

    A *rejected* attempt is a normal outcome and is reported through
    :class:`repro.core.authentication.AuthDecision`; this exception is for
    requests the system cannot evaluate at all, such as a trial whose PPG
    recording does not cover the keystroke timestamps.
    """


class NotFittedError(P2AuthError):
    """A model or transform was used before :meth:`fit` was called."""


class ConcurrencyError(P2AuthError):
    """A lock-discipline invariant was violated at runtime.

    Raised only under ``REPRO_CONCURRENCY_DEBUG=1`` (see
    :mod:`repro.concurrency`), when state declared ``guarded-by`` a lock
    is touched by a thread that does not hold that lock. In production
    the checks compile away to plain :class:`threading.RLock` usage.
    """
