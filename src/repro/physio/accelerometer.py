"""Simulated wrist accelerometer (LIS2DH12 at 75 Hz).

Fig. 12 of the paper compares PPG against accelerometer data captured
simultaneously and finds the accelerometer far less discriminative:
during static PIN entry the wrist barely moves — the thumb does the
work — so the acceleration transient per keystroke is tiny, similar
across keys, and similar across users, while the muscle engagement
still modulates blood flow strongly. This module encodes exactly that
asymmetry: keystroke transients near the noise floor with only weak
user/key dependence.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..types import AccelRecording, Hand, KeystrokeEvent
from .keypad import key_position
from .user import UserProfile


def synthesize_accelerometer(
    user: UserProfile,
    events: Sequence[KeystrokeEvent],
    duration: float,
    config: SimulationConfig,
    rng: np.random.Generator,
) -> AccelRecording:
    """Synthesize the 3-axis accelerometer stream for one trial.

    Args:
        user: profile of the typist.
        events: keystroke events (only left-hand presses shake the
            watch-wearing wrist).
        duration: trial duration in seconds.
        config: simulation parameters.
        rng: randomness source.

    Returns:
        An :class:`AccelRecording` at ``config.accel_fs``.
    """
    if duration <= 0:
        raise ConfigurationError("duration must be positive")
    fs = config.accel_fs
    n = int(round(duration * fs))
    t = np.arange(n) / fs

    samples = rng.normal(0.0, config.accel_noise_std, size=(3, n))

    # Slow posture drift, common to all axes at different gains.
    drift = np.cumsum(rng.normal(0.0, 1.0, size=n))
    window = max(1, int(round(1.5 * fs)))
    kernel = np.ones(window) / window
    drift = np.convolve(drift, kernel, mode="same")
    peak = np.max(np.abs(drift))
    if peak > 0:
        drift = drift / peak
    samples += 0.004 * rng.uniform(0.5, 1.5, size=(3, 1)) * drift[np.newaxis, :]

    # The discriminative content is deliberately weak: amplitude varies
    # only mildly with user strength and key position, and the ringing
    # frequency/decay carry a faint user signature (hand mass and grip)
    # buried under large per-press jitter — enough for the Fig. 12
    # comparison to be non-degenerate, far too little to compete with
    # the blood-flow channel.
    trait_rng = np.random.default_rng(1_000_003 * (user.user_id + 1))
    freq_base = float(trait_rng.uniform(9.0, 13.0))
    decay_base = float(trait_rng.uniform(0.05, 0.08))
    axis = trait_rng.normal(0.0, 1.0, size=3)
    axis /= np.linalg.norm(axis) + 1e-12
    strength = 0.8 + 0.4 * (user.noise.instability / 2.0)
    for event in events:
        if event.hand is not Hand.LEFT:
            continue
        x, y = key_position(event.key)
        amp = config.accel_keystroke_amplitude * strength * (1.0 + 0.12 * x + 0.08 * y)
        amp *= float(rng.uniform(0.7, 1.3))
        freq = freq_base * float(rng.uniform(0.85, 1.15))
        decay = decay_base * float(rng.uniform(0.8, 1.2))
        # Wrist posture gives each user a dominant shake axis; per-press
        # wobble perturbs it without erasing it.
        direction = axis + 0.35 * rng.normal(0.0, 1.0, size=3)
        direction /= np.linalg.norm(direction) + 1e-12
        dt = t - event.true_time
        mask = dt > 0
        transient = np.zeros(n)
        transient[mask] = (
            amp * np.sin(2.0 * np.pi * freq * dt[mask]) * np.exp(-dt[mask] / decay)
        )
        samples += direction[:, np.newaxis] * transient[np.newaxis, :]

    return AccelRecording(samples=samples, fs=fs)
