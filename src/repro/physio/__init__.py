"""Physiology simulator: the substitution for the paper's human data.

This package synthesizes keystroke-induced PPG measurements with the
generative structure P2Auth's insights rely on (Section III of the
paper): a periodic cardiac component, per-user per-key motion-artifact
responses that dominate the heartbeat, realistic noise and baseline
wander, and a simultaneous low-motion accelerometer stream.

Public entry points:

- :class:`UserProfile` / :func:`sample_user` — per-user biometrics.
- :class:`TrialSynthesizer` — synthesize whole PIN-entry trials.
- :class:`PinPad` — 3x4 PIN pad geometry and hand assignment.
"""

from .accelerometer import synthesize_accelerometer
from .aging import BASE_AGING_RATE_PER_DAY, aging_rate, drift_magnitude
from .artifacts import ArtifactParams, ArtifactResponseField, artifact_waveform
from .cardiac import CardiacParams, sample_cardiac_params, synthesize_cardiac
from .keypad import PinPad, key_position
from .noise import NoiseParams, synthesize_noise
from .ppg import TrialSynthesizer
from .user import UserProfile, sample_user, sample_population

__all__ = [
    "BASE_AGING_RATE_PER_DAY",
    "aging_rate",
    "drift_magnitude",
    "ArtifactParams",
    "ArtifactResponseField",
    "artifact_waveform",
    "CardiacParams",
    "sample_cardiac_params",
    "synthesize_cardiac",
    "PinPad",
    "key_position",
    "NoiseParams",
    "synthesize_noise",
    "TrialSynthesizer",
    "UserProfile",
    "sample_user",
    "sample_population",
    "synthesize_accelerometer",
]
