"""Cardiac (heartbeat) component of the PPG signal.

A PPG pulse wave is modelled as a periodic template evaluated along a
continuously accumulated cardiac phase. The template is a sum of two
wrapped Gaussians — the systolic peak and the dicrotic wave — whose
positions, widths, and amplitude ratio are per-user biometric
parameters (human tissue structure differs across people; Section III
of the paper). Heart-rate variability perturbs the instantaneous beat
period with both white jitter and a slow respiratory modulation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class CardiacParams:
    """Per-user cardiac pulse parameters.

    Attributes:
        heart_rate: resting heart rate in beats per minute.
        systolic_phase: phase (in [0, 1)) of the systolic peak.
        systolic_width: phase-domain width of the systolic peak.
        dicrotic_phase: phase of the dicrotic wave.
        dicrotic_width: phase-domain width of the dicrotic wave.
        dicrotic_ratio: dicrotic amplitude relative to systolic.
        amplitude: overall AC amplitude of the cardiac component.
        hrv_std: per-beat period jitter as a fraction of the period.
        resp_rate: respiratory modulation frequency, Hz.
        resp_depth: fractional depth of respiratory sinus arrhythmia.
    """

    heart_rate: float
    systolic_phase: float
    systolic_width: float
    dicrotic_phase: float
    dicrotic_width: float
    dicrotic_ratio: float
    amplitude: float
    hrv_std: float
    resp_rate: float
    resp_depth: float

    def __post_init__(self) -> None:
        if self.heart_rate <= 0:
            raise ConfigurationError("heart rate must be positive")
        if not 0 <= self.systolic_phase < 1 or not 0 <= self.dicrotic_phase < 1:
            raise ConfigurationError("pulse phases must lie in [0, 1)")
        if self.systolic_width <= 0 or self.dicrotic_width <= 0:
            raise ConfigurationError("pulse widths must be positive")
        if self.amplitude <= 0:
            raise ConfigurationError("cardiac amplitude must be positive")


def sample_cardiac_params(
    rng: np.random.Generator, config: SimulationConfig
) -> CardiacParams:
    """Sample one user's cardiac parameters from the population model."""
    hr_low, hr_high = config.heart_rate_range
    return CardiacParams(
        heart_rate=float(rng.uniform(hr_low, hr_high)),
        systolic_phase=float(rng.uniform(0.18, 0.30)),
        systolic_width=float(rng.uniform(0.055, 0.095)),
        dicrotic_phase=float(rng.uniform(0.48, 0.64)),
        dicrotic_width=float(rng.uniform(0.07, 0.13)),
        dicrotic_ratio=float(rng.uniform(0.25, 0.55)),
        amplitude=config.pulse_amplitude * float(rng.uniform(0.8, 1.25)),
        hrv_std=config.hrv_std * float(rng.uniform(0.7, 1.3)),
        resp_rate=float(rng.uniform(0.18, 0.32)),
        resp_depth=float(rng.uniform(0.02, 0.06)),
    )


def _wrapped_gaussian(phase: np.ndarray, center: float, width: float) -> np.ndarray:
    """Gaussian bump on the unit circle, evaluated at ``phase`` in [0, 1)."""
    delta = phase - center
    delta = delta - np.round(delta)
    return np.exp(-0.5 * (delta / width) ** 2)


def pulse_template(phase: np.ndarray, params: CardiacParams) -> np.ndarray:
    """Evaluate the pulse waveform at cardiac ``phase`` values.

    The template is zero-mean over a cycle only approximately; the
    sensing layer AC-couples the signal downstream, so an offset here is
    harmless.
    """
    phase = np.mod(np.asarray(phase, dtype=np.float64), 1.0)
    systolic = _wrapped_gaussian(phase, params.systolic_phase, params.systolic_width)
    dicrotic = _wrapped_gaussian(phase, params.dicrotic_phase, params.dicrotic_width)
    return params.amplitude * (systolic + params.dicrotic_ratio * dicrotic)


def synthesize_cardiac(
    n_samples: int,
    fs: float,
    params: CardiacParams,
    rng: np.random.Generator,
) -> np.ndarray:
    """Synthesize the cardiac PPG component.

    The instantaneous heart rate is the resting rate modulated by
    respiratory sinus arrhythmia plus smoothed white jitter; cardiac
    phase is its cumulative integral.

    Args:
        n_samples: number of output samples.
        fs: sampling rate, Hz.
        params: per-user cardiac parameters.
        rng: randomness source for the HRV realization.

    Returns:
        Array of shape ``(n_samples,)``.
    """
    if n_samples <= 0:
        raise ConfigurationError("n_samples must be positive")
    if fs <= 0:
        raise ConfigurationError("sampling rate must be positive")

    t = np.arange(n_samples) / fs
    base_freq = params.heart_rate / 60.0

    resp_phase = rng.uniform(0.0, 2.0 * np.pi)
    resp = params.resp_depth * np.sin(2.0 * np.pi * params.resp_rate * t + resp_phase)

    # Smooth the white per-sample jitter over roughly one beat so the
    # instantaneous frequency wanders beat-to-beat instead of per-sample.
    jitter = rng.normal(0.0, params.hrv_std, size=n_samples)
    beat_len = max(1, int(round(fs / base_freq)))
    kernel = np.ones(beat_len) / beat_len
    jitter = np.convolve(jitter, kernel, mode="same")

    inst_freq = base_freq * (1.0 + resp + jitter)
    inst_freq = np.clip(inst_freq, 0.3 * base_freq, 2.5 * base_freq)

    phase0 = rng.uniform(0.0, 1.0)
    phase = phase0 + np.cumsum(inst_freq) / fs
    return pulse_template(phase, params)
