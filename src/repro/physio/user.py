"""Per-user biometric profiles.

A :class:`UserProfile` bundles everything that makes a simulated person
physically and behaviourally distinct: cardiac pulse shape, the
keystroke-artifact response field, noise/restlessness levels, the
two-handed typing habit, a typing rhythm, and how strongly each wrist
sensor site couples to each signal source (wearing position and wrist
anatomy differ across people — the paper's Section VI discussion).

Profiles are sampled once and reused across all of a user's trials;
the paper's 8-week study found keystroke-PPG patterns stable over
time, and that stability is what makes enrollment-once authentication
possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..types import PIN_PAD_KEYS
from .artifacts import ArtifactResponseField
from .cardiac import CardiacParams, sample_cardiac_params
from .keypad import PinPad
from .noise import NoiseParams, sample_noise_params


@dataclass(frozen=True)
class TypingRhythm:
    """A user's keystroke timing habit.

    The emulating attacker of Section IV-D observes and copies the
    victim's rhythm, so rhythm is deliberately *not* a secure feature;
    it only shapes timing, never the artifact waveform.

    Attributes:
        speed_factor: multiplier on the nominal inter-key interval.
        jitter_factor: multiplier on the nominal inter-key jitter.
        key_bias: per-key additive offset (seconds) on the interval
            *preceding* that key — reaching a far key takes longer.
    """

    speed_factor: float
    jitter_factor: float
    key_bias: Dict[str, float]

    def __post_init__(self) -> None:
        if self.speed_factor <= 0:
            raise ConfigurationError("speed factor must be positive")
        if self.jitter_factor < 0:
            raise ConfigurationError("jitter factor must be non-negative")

    @staticmethod
    def sample(rng: np.random.Generator) -> "TypingRhythm":
        """Sample one user's rhythm from the population model."""
        bias = {key: float(rng.normal(0.0, 0.06)) for key in PIN_PAD_KEYS}
        return TypingRhythm(
            speed_factor=float(rng.uniform(0.8, 1.25)),
            jitter_factor=float(rng.uniform(0.6, 1.4)),
            key_bias=bias,
        )

    def intervals(
        self, pin: str, config: SimulationConfig, rng: np.random.Generator
    ) -> np.ndarray:
        """Sample the inter-key gaps preceding keys 2..len(pin).

        Returns an array of ``len(pin) - 1`` positive gaps in seconds.
        """
        if len(pin) < 1:
            raise ConfigurationError("PIN must have at least one digit")
        gaps = []
        for digit in pin[1:]:
            mean = (
                config.inter_key_interval * self.speed_factor
                + self.key_bias.get(digit, 0.0)
            )
            gap = rng.normal(mean, config.inter_key_jitter * self.jitter_factor)
            gaps.append(max(0.35, float(gap)))
        return np.asarray(gaps)


@dataclass(frozen=True)
class UserProfile:
    """Complete biometric and behavioural profile of one simulated user.

    Attributes:
        user_id: stable integer identity.
        cardiac: pulse-shape and heart-rate parameters.
        artifacts: keystroke-artifact response field.
        noise: noise and restlessness levels.
        pad: PIN pad hand-assignment habit.
        rhythm: keystroke timing habit.
        site_coupling: array of shape ``(2, 3)`` — how strongly sensor
            sites 0/1 couple to the (cardiac, mechanical, vascular)
            sources; encodes wearing position and wrist anatomy.
        press_variability: relative per-press artifact parameter jitter.
    """

    user_id: int
    cardiac: CardiacParams
    artifacts: ArtifactResponseField
    noise: NoiseParams
    pad: PinPad
    rhythm: TypingRhythm
    site_coupling: np.ndarray
    press_variability: float

    def __post_init__(self) -> None:
        coupling = np.asarray(self.site_coupling, dtype=np.float64)
        if coupling.shape != (2, 3):
            raise ConfigurationError(
                f"site coupling must have shape (2, 3), got {coupling.shape}"
            )
        if np.any(coupling < 0):
            raise ConfigurationError("site coupling must be non-negative")
        if self.press_variability < 0:
            raise ConfigurationError("press variability must be non-negative")
        object.__setattr__(self, "site_coupling", coupling)


def sample_user(
    user_id: int,
    rng: np.random.Generator,
    config: Optional[SimulationConfig] = None,
) -> UserProfile:
    """Sample a complete user profile.

    Args:
        user_id: identity to assign.
        rng: randomness source; a dedicated child generator per user
            keeps profiles independent of how many users are drawn.
        config: simulation parameters (defaults to paper settings).
    """
    if config is None:
        config = SimulationConfig()
    # Wide coupling spread (wearing position + wrist anatomy) and tight
    # per-press variability: what separates users must exceed what
    # separates one user's repetitions, or enrollment-once biometrics
    # could not work at all (the paper's 8-week stability finding).
    coupling = rng.uniform(0.55, 1.45, size=(2, 3))
    return UserProfile(
        user_id=user_id,
        cardiac=sample_cardiac_params(rng, config),
        artifacts=ArtifactResponseField.sample(rng, config),
        noise=sample_noise_params(rng, config),
        pad=PinPad.sample(rng),
        rhythm=TypingRhythm.sample(rng),
        site_coupling=coupling,
        press_variability=float(rng.uniform(0.04, 0.09)),
    )


def sample_population(
    n_users: int,
    seed: int = 0,
    config: Optional[SimulationConfig] = None,
) -> List[UserProfile]:
    """Sample ``n_users`` independent profiles.

    Each user gets a child generator spawned from ``seed``, so user i
    is identical no matter how large the population is — important for
    experiments that reuse the same people across conditions.
    """
    if n_users < 1:
        raise ConfigurationError("need at least one user")
    if config is None:
        config = SimulationConfig()
    root = np.random.SeedSequence(seed)
    children = root.spawn(n_users)
    return [
        sample_user(i, np.random.default_rng(child), config)
        for i, child in enumerate(children)
    ]
