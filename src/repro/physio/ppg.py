"""Whole PIN-entry trial synthesis.

:class:`TrialSynthesizer` is the top of the substrate stack: given a
user profile and a PIN, it lays out the keystroke schedule from the
user's rhythm, renders the tissue-level source signals (cardiac +
per-press artifact components), runs them through the sensing layer,
and returns a :class:`~repro.types.PinEntryTrial` identical in shape to
what the paper's hardware prototype captured.

Emulating attacks are expressed naturally here: synthesize a trial for
the *attacker's* profile but pass ``rhythm_from=victim`` so the typing
cadence matches the observed victim while the physiology stays the
attacker's own (Section IV-D).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Tuple

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..sensing.channels import SourceSignals
from ..sensing.device import WearablePrototype
from ..types import (
    ChannelInfo,
    Hand,
    KeystrokeEvent,
    PinEntryTrial,
    PROTOTYPE_CHANNELS,
)
from .accelerometer import synthesize_accelerometer
from .artifacts import artifact_waveform, drift_params, perturb_params
from .cardiac import synthesize_cardiac
from .user import UserProfile

#: Rendered artifact support, as a multiple of the nominal duration —
#: long enough to include the rebound trough and ringing tail.
_ARTIFACT_SUPPORT_FACTOR = 2.6

#: Relative amplitude of the cross-talk an off-wrist (right-hand) press
#: leaves in the left-wrist PPG (phone motion transmitted through the
#: holding hand). Small enough that it never trips keystroke detection.
_OFF_HAND_CROSSTALK = 0.04


def _drift_seed(user_id: int, key: str, component: str) -> int:
    """Stable (process-independent) seed for a drift direction.

    ``hash()`` is salted per interpreter, so a cryptographic digest
    keeps template aging reproducible across runs.
    """
    text = f"{user_id}|{key}|{component}"
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def _add_at(target: np.ndarray, waveform: np.ndarray, start: int) -> None:
    """Add ``waveform`` into ``target`` starting at index ``start``.

    Portions falling outside the target are silently clipped.
    """
    n = target.shape[0]
    lo = max(0, start)
    hi = min(n, start + waveform.shape[0])
    if hi <= lo:
        return
    target[lo:hi] += waveform[lo - start : hi - start]


class TrialSynthesizer:
    """Synthesizes PIN-entry trials for simulated users.

    Args:
        config: simulation parameters (defaults to the paper's setup).
        channels: PPG channel layout; defaults to the 4-channel
            prototype (2 sensor sites x {red, infrared}).
    """

    def __init__(
        self,
        config: Optional[SimulationConfig] = None,
        channels: Tuple[ChannelInfo, ...] = PROTOTYPE_CHANNELS,
    ) -> None:
        self._config = config if config is not None else SimulationConfig()
        self._device = WearablePrototype(self._config, channels)

    @property
    def config(self) -> SimulationConfig:
        """Simulation parameters in effect."""
        return self._config

    @property
    def device(self) -> WearablePrototype:
        """The simulated capture device."""
        return self._device

    def synthesize_trial(
        self,
        user: UserProfile,
        pin: str,
        rng: np.random.Generator,
        one_handed: bool = True,
        forced_left_count: Optional[int] = None,
        rhythm_from: Optional[UserProfile] = None,
        include_accel: bool = False,
        aging: float = 0.0,
    ) -> PinEntryTrial:
        """Synthesize one PIN-entry trial.

        Args:
            user: whose physiology produces the signals.
            pin: digits to type.
            rng: randomness source for this trial.
            one_handed: single-thumb entry (all keys on the watch hand).
            forced_left_count: two-handed only — force exactly this
                many presses onto the watch-wearing hand (used to build
                the paper's double-2/double-3 evaluation cases).
            rhythm_from: copy this profile's typing rhythm instead of
                ``user``'s own (emulating attack).
            include_accel: also synthesize the accelerometer stream.
            aging: systematic template-aging magnitude applied to the
                artifact parameters (0 = trial contemporaneous with
                enrollment; see
                :func:`repro.physio.artifacts.drift_params`).

        Returns:
            A complete :class:`PinEntryTrial`.
        """
        if not pin or not pin.isdigit():
            raise ConfigurationError(f"PIN must be a non-empty digit string: {pin!r}")
        config = self._config
        rhythm_owner = rhythm_from if rhythm_from is not None else user

        gaps = rhythm_owner.rhythm.intervals(pin, config, rng)
        press_times = config.lead_in + np.concatenate([[0.0], np.cumsum(gaps)])
        duration = float(press_times[-1]) + config.lead_out
        n_samples = int(round(duration * config.fs))

        hands = user.pad.assign_hands(
            pin,
            one_handed=one_handed,
            forced_left_count=forced_left_count,
            rng=rng,
        )

        cardiac = synthesize_cardiac(n_samples, config.fs, user.cardiac, rng)
        mechanical = np.zeros(n_samples)
        vascular = np.zeros(n_samples)
        support = config.artifact_duration * _ARTIFACT_SUPPORT_FACTOR

        for key, time, hand in zip(pin, press_times, hands):
            scale = 1.0 if hand is Hand.LEFT else _OFF_HAND_CROSSTALK
            start = int(round(time * config.fs))
            for component, target in (
                ("mechanical", mechanical),
                ("vascular", vascular),
            ):
                params = user.artifacts.params_for(key, component)
                if aging:
                    params = drift_params(
                        params, _drift_seed(user.user_id, key, component), aging
                    )
                params = perturb_params(params, rng, scale=user.press_variability)
                waveform = scale * artifact_waveform(params, support, config.fs)
                _add_at(target, waveform, start)

        sources = SourceSignals(
            cardiac=cardiac,
            mechanical=mechanical,
            vascular=vascular,
            fs=config.fs,
        )
        recording = self._device.capture(
            sources, user.site_coupling, user.noise, rng
        )

        reported = self._device.report_times(press_times, rng)
        events = tuple(
            KeystrokeEvent(
                key=key,
                true_time=float(true),
                reported_time=float(rep),
                hand=hand,
            )
            for key, true, rep, hand in zip(pin, press_times, reported, hands)
        )

        accel = None
        if include_accel:
            accel = synthesize_accelerometer(user, events, duration, config, rng)

        return PinEntryTrial(
            recording=recording,
            events=events,
            pin=pin,
            user_id=user.user_id,
            one_handed=one_handed,
            accel=accel,
        )
