"""Keystroke-induced motion-artifact model.

This module encodes the paper's central empirical findings (Section
III) as a generative model:

1. a keystroke produces a biphasic deflection in the PPG trace that is
   *larger* than the heartbeat component (peak/trough more pronounced);
2. for one user, different keys produce different deflections — the
   thumb excursion to each key engages the wrist muscles differently,
   so artifact parameters vary smoothly with key position on the pad;
3. for one key, different users produce different deflections — tissue
   structure, wearing position, and keystroke habits are personal.

Each user carries an :class:`ArtifactResponseField`: a set of base
artifact parameters, a smooth (linear-in-key-coordinates) response
describing how parameters change across the pad, and small fixed
per-key residuals. Two artifact *components* are generated per press:

- ``mechanical`` — the gross muscle/pressure transient; shared shape
  family, moderately user-specific;
- ``vascular`` — the microvascular blood-volume response; strongly
  user-specific. Red and infrared channels weight these two components
  differently in the sensing layer, which is what gives the per-channel
  behaviour of Fig. 13b.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Tuple

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError
from ..types import PIN_PAD_KEYS
from .keypad import key_position

#: Names of the two artifact components.
COMPONENTS: Tuple[str, str] = ("mechanical", "vascular")


@dataclass(frozen=True)
class ArtifactParams:
    """Shape parameters of one keystroke-artifact component.

    The waveform is a positive Gaussian peak followed by a rebound
    trough and a small decaying oscillation (ringing of the vascular
    bed), all relative to the press moment:

    ``a(t) = A [ G(t; t_p, w_p) - r G(t; t_p + d, w_t)
                 + o sin(2 pi f (t - t_p)) exp(-(t - t_p)/tau) 1[t > t_p] ]``

    Attributes:
        amplitude: peak amplitude ``A`` (PPG units).
        peak_time: latency ``t_p`` of the main peak after the press, s.
        peak_width: Gaussian width ``w_p`` of the main peak, s.
        trough_ratio: rebound depth ``r`` relative to the peak.
        trough_delay: delay ``d`` of the trough after the peak, s.
        trough_width: Gaussian width ``w_t`` of the trough, s.
        osc_freq: ringing frequency ``f``, Hz.
        osc_amp: ringing amplitude ``o`` relative to the peak.
        osc_decay: ringing decay constant ``tau``, s.
    """

    amplitude: float
    peak_time: float
    peak_width: float
    trough_ratio: float
    trough_delay: float
    trough_width: float
    osc_freq: float
    osc_amp: float
    osc_decay: float

    def __post_init__(self) -> None:
        if self.amplitude < 0:
            raise ConfigurationError("artifact amplitude must be non-negative")
        if self.peak_width <= 0 or self.trough_width <= 0:
            raise ConfigurationError("artifact widths must be positive")
        if self.osc_decay <= 0:
            raise ConfigurationError("oscillation decay must be positive")


def artifact_waveform(
    params: ArtifactParams, duration: float, fs: float
) -> np.ndarray:
    """Render an artifact component to samples.

    Args:
        params: shape parameters.
        duration: waveform support in seconds (press at t = 0).
        fs: sampling rate, Hz.

    Returns:
        Array of shape ``(round(duration * fs),)``.
    """
    if duration <= 0 or fs <= 0:
        raise ConfigurationError("duration and fs must be positive")
    n = int(round(duration * fs))
    t = np.arange(n) / fs

    peak = np.exp(-0.5 * ((t - params.peak_time) / params.peak_width) ** 2)
    trough_center = params.peak_time + params.trough_delay
    trough = np.exp(-0.5 * ((t - trough_center) / params.trough_width) ** 2)

    after_peak = t > params.peak_time
    ring = np.zeros_like(t)
    dt = t[after_peak] - params.peak_time
    ring[after_peak] = np.sin(2.0 * np.pi * params.osc_freq * dt) * np.exp(
        -dt / params.osc_decay
    )

    shape = peak - params.trough_ratio * trough + params.osc_amp * ring
    return params.amplitude * shape


#: Per-parameter scale of the smooth pad-position response. Chosen so
#: that adjacent keys are distinguishable but same-user keys remain far
#: closer to each other than to another user's.
_GRADIENT_SCALE: Dict[str, float] = {  # concurrency: immutable-after-init
    "amplitude": 0.22,
    "peak_time": 0.018,
    "peak_width": 0.012,
    "trough_ratio": 0.10,
    "trough_delay": 0.020,
    "trough_width": 0.012,
    "osc_freq": 0.55,
    "osc_amp": 0.045,
    "osc_decay": 0.020,
}

#: Per-parameter scale of the fixed per-key residual (idiosyncratic
#: deviations from the smooth response, e.g. an awkward stretch to "0").
_RESIDUAL_SCALE: Dict[str, float] = {  # concurrency: immutable-after-init
    name: 0.35 * scale for name, scale in _GRADIENT_SCALE.items()
}

#: Hard lower bounds keeping perturbed parameters physical.
_PARAM_FLOORS: Dict[str, float] = {  # concurrency: immutable-after-init
    "amplitude": 0.05,
    "peak_time": 0.02,
    "peak_width": 0.015,
    "trough_ratio": 0.0,
    "trough_delay": 0.04,
    "trough_width": 0.02,
    "osc_freq": 0.5,
    "osc_amp": 0.0,
    "osc_decay": 0.03,
}

_PARAM_NAMES: Tuple[str, ...] = tuple(f.name for f in fields(ArtifactParams))


def _clip_params(values: Dict[str, float]) -> ArtifactParams:
    """Build :class:`ArtifactParams` applying physical floors."""
    clipped = {
        name: max(_PARAM_FLOORS[name], value) for name, value in values.items()
    }
    return ArtifactParams(**clipped)


def _sample_base_params(
    rng: np.random.Generator, config: SimulationConfig, component: str
) -> ArtifactParams:
    """Sample a user's base (pad-center) parameters for one component."""
    amp_low, amp_high = config.artifact_amplitude_range
    amplitude = float(rng.uniform(amp_low, amp_high))
    # The population spreads below are deliberately wide: inter-user
    # waveform-shape differences are the security factor (the paper's
    # emulating attacker copies PIN and rhythm but cannot copy tissue
    # structure), so they must dominate rhythm similarity in feature
    # space.
    if component == "vascular":
        # The microvascular response is slower, smaller, and ringier
        # than the gross mechanical transient.
        amplitude *= float(rng.uniform(0.35, 0.85))
        peak_time = float(rng.uniform(0.08, 0.24))
        peak_width = float(rng.uniform(0.045, 0.12))
        osc_amp = float(rng.uniform(0.08, 0.35))
    else:
        peak_time = float(rng.uniform(0.04, 0.16))
        peak_width = float(rng.uniform(0.03, 0.09))
        osc_amp = float(rng.uniform(0.03, 0.20))
    return ArtifactParams(
        amplitude=amplitude,
        peak_time=peak_time,
        peak_width=peak_width,
        trough_ratio=float(rng.uniform(0.25, 0.95)),
        trough_delay=float(rng.uniform(0.08, 0.26)),
        trough_width=float(rng.uniform(0.04, 0.14)),
        osc_freq=float(rng.uniform(2.0, 7.0)),
        osc_amp=osc_amp,
        osc_decay=float(rng.uniform(0.06, 0.26)),
    )


@dataclass(frozen=True)
class ArtifactResponseField:
    """A user's complete keystroke-artifact response.

    For each component, the parameters at key ``k`` with pad coordinates
    ``(x, y)`` are::

        p_k = p_base + g_x * x + g_y * y + r_k

    where ``g`` are user-specific gradients and ``r_k`` a fixed per-key
    residual. All three pieces are sampled once per user, so the field
    is stable across trials (the paper observes PPG patterns remain
    consistent over its 8-week study).

    Attributes:
        base: component name -> base parameters at the pad center.
        gradients: component name -> parameter name -> (g_x, g_y).
        residuals: component name -> key -> parameter name -> residual.
    """

    base: Dict[str, ArtifactParams]
    gradients: Dict[str, Dict[str, Tuple[float, float]]]
    residuals: Dict[str, Dict[str, Dict[str, float]]]

    @staticmethod
    def sample(
        rng: np.random.Generator, config: SimulationConfig
    ) -> "ArtifactResponseField":
        """Sample a complete response field for one user."""
        base: Dict[str, ArtifactParams] = {}
        gradients: Dict[str, Dict[str, Tuple[float, float]]] = {}
        residuals: Dict[str, Dict[str, Dict[str, float]]] = {}
        for component in COMPONENTS:
            base[component] = _sample_base_params(rng, config, component)
            gradients[component] = {
                name: (
                    float(rng.normal(0.0, _GRADIENT_SCALE[name])),
                    float(rng.normal(0.0, _GRADIENT_SCALE[name])),
                )
                for name in _PARAM_NAMES
            }
            residuals[component] = {
                key: {
                    name: float(rng.normal(0.0, _RESIDUAL_SCALE[name]))
                    for name in _PARAM_NAMES
                }
                for key in PIN_PAD_KEYS
            }
        return ArtifactResponseField(
            base=base, gradients=gradients, residuals=residuals
        )

    def params_for(self, key: str, component: str) -> ArtifactParams:
        """Return the artifact parameters for ``key`` and ``component``."""
        if component not in self.base:
            raise ConfigurationError(f"unknown artifact component: {component!r}")
        x, y = key_position(key)
        base = self.base[component]
        grads = self.gradients[component]
        resid = self.residuals[component][key]
        values = {}
        for name in _PARAM_NAMES:
            gx, gy = grads[name]
            values[name] = getattr(base, name) + gx * x + gy * y + resid[name]
        return _clip_params(values)


def drift_params(
    params: ArtifactParams,
    drift_seed: int,
    aging: float,
) -> ArtifactParams:
    """Apply systematic template aging to artifact parameters.

    The paper's 8-week study found keystroke-PPG patterns stable, but
    over longer horizons tissue, wearing habits, and musculature shift.
    Aging is modelled as a *fixed* per-(user, key, component) drift
    direction scaled by ``aging`` (a dimensionless age, ~0.05 per
    month): repeated trials at the same age drift consistently rather
    than just getting noisier, which is what actually degrades an
    enrolled template.

    Args:
        params: the un-aged parameters.
        drift_seed: deterministic seed identifying the (user, key,
            component) whose drift direction to use.
        aging: drift magnitude; 0 disables aging.
    """
    if aging < 0:
        raise ConfigurationError("aging must be non-negative")
    # reprolint: disable-next=RL005 -- exact "disabled" sentinel, not a tolerance
    if aging == 0.0:
        return params
    rng = np.random.default_rng(drift_seed)
    direction = rng.normal(0.0, 1.0, size=len(_PARAM_NAMES))
    direction /= np.linalg.norm(direction)
    values = {
        name: getattr(params, name) * (1.0 + aging * float(direction[i]))
        for i, name in enumerate(_PARAM_NAMES)
    }
    return _clip_params(values)


def perturb_params(
    params: ArtifactParams, rng: np.random.Generator, scale: float = 0.08
) -> ArtifactParams:
    """Apply trial-to-trial multiplicative jitter to artifact parameters.

    Real presses are never identical: press strength, thumb angle, and
    contact time vary slightly. ``scale`` is the relative standard
    deviation of the per-press variation.
    """
    if scale < 0:
        raise ConfigurationError("perturbation scale must be non-negative")
    values = {}
    for name in _PARAM_NAMES:
        factor = 1.0 + float(rng.normal(0.0, scale))
        values[name] = getattr(params, name) * factor
    return _clip_params(values)
