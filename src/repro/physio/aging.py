"""Template aging: slow per-user physiological drift across weeks.

The paper's 8-week study found keystroke-PPG patterns stable enough for
enrollment-once authentication, but related work ("Know Me by My
Pulse") shows wrist-PPG templates age over longer horizons: tissue,
wearing habits, and musculature shift, and a template enrolled at day 0
slowly stops matching the person it describes.

The aging model here is a deterministic *trajectory*, not noise:

- each user drifts along a fixed per-(user, key, component) direction
  (:func:`repro.physio.artifacts.drift_params`), so repeated trials at
  the same age drift consistently instead of just getting noisier;
- the drift *magnitude* at age ``t`` is a deterministic function of
  ``(user_id, age_days, seed)`` — a per-user rate (some people's
  physiology wanders faster) times the age — so probes at age ``t``
  are bit-identical across runs and processes;
- age 0 is exactly the enrollment-day distribution (magnitude 0 is a
  no-op in :func:`~repro.physio.artifacts.drift_params`).

Evaluation code asks :class:`repro.data.StudyData` for
``aged_trials(user, pin, condition, count, age_days=t)``; enrollment
stays at age 0 (or at the age a mitigation policy last refreshed the
template — see :mod:`repro.eval.robustness`).
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import ConfigurationError

#: Baseline drift magnitude accumulated per simulated day. The
#: dimensionless magnitude feeds
#: :func:`repro.physio.artifacts.drift_params`, which applies it as a
#: clipped multiplicative change to the artifact parameters — scores
#: degrade slowly below ~1 and visibly beyond it. 0.5 per month keeps
#: the paper's 8-week window mostly stable (magnitude < ~1.5) while a
#: frozen template measurably fails at quarter-scale horizons.
BASE_AGING_RATE_PER_DAY: float = 0.5 / 30.0

#: Spread of the per-user rate multiplier around the base rate.
_RATE_FACTOR_RANGE = (0.6, 1.6)


def _stable_seed(*parts: object) -> int:
    """Derive a stable 64-bit seed from heterogeneous key parts."""
    text = "|".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def aging_rate(user_id: int, seed: int) -> float:
    """Per-user daily drift rate (dimensionless aging per day).

    Deterministic in ``(user_id, seed)``: the same simulated person ages
    at the same rate in every process and every sweep cell.
    """
    rng = np.random.default_rng(_stable_seed(seed, user_id, "aging-rate"))
    low, high = _RATE_FACTOR_RANGE
    return BASE_AGING_RATE_PER_DAY * float(rng.uniform(low, high))


def drift_magnitude(user_id: int, age_days: float, seed: int) -> float:
    """Aging magnitude of user ``user_id`` at ``age_days`` after enrollment.

    The trajectory is linear in age with a deterministic per-user rate,
    keyed to ``(user_id, age_days, seed)`` and nothing else. Age 0
    returns exactly 0.0, which :func:`repro.physio.artifacts.drift_params`
    treats as a bit-exact no-op.

    Raises:
        ConfigurationError: on a negative age.
    """
    if age_days < 0:
        raise ConfigurationError(f"age_days must be >= 0, got {age_days}")
    if age_days == 0:
        return 0.0
    return aging_rate(user_id, seed) * float(age_days)
