"""Noise and baseline-wander model for simulated PPG.

The paper's pipeline devotes two modules (median filtering and
smoothness-priors detrending) to fighting exactly the disturbances
synthesized here:

- **baseline wander** — slow non-linear drift from respiration,
  perfusion changes, and sensor-contact pressure; modelled as a few
  low-frequency sinusoids plus a smoothed random walk;
- **wideband sensor noise** — photodetector shot/ambient noise;
- **impulse noise** — occasional single-sample spikes (the reason a
  *median* filter is chosen over a linear one);
- **fidget bumps** — sporadic non-keystroke motion artifacts whose per
  user rate captures behavioural stability (Fig. 8's volunteer 8 vs
  volunteer 11).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import SimulationConfig
from ..errors import ConfigurationError


@dataclass(frozen=True)
class NoiseParams:
    """Per-user noise levels.

    Attributes:
        baseline_amplitude: amplitude of the slow baseline wander.
        noise_std: standard deviation of wideband sensor noise.
        impulse_rate: expected impulse spikes per second.
        impulse_amplitude: amplitude scale of impulse spikes.
        fidget_rate: expected spurious motion bumps per second.
        fidget_amplitude: amplitude scale of spurious bumps.
        instability: the user's overall restlessness multiplier.
    """

    baseline_amplitude: float
    noise_std: float
    impulse_rate: float
    impulse_amplitude: float
    fidget_rate: float
    fidget_amplitude: float
    instability: float

    def __post_init__(self) -> None:
        for name in (
            "baseline_amplitude",
            "noise_std",
            "impulse_rate",
            "impulse_amplitude",
            "fidget_rate",
            "fidget_amplitude",
            "instability",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


def sample_noise_params(
    rng: np.random.Generator, config: SimulationConfig
) -> NoiseParams:
    """Sample one user's noise levels from the population model."""
    low, high = config.user_instability_range
    instability = float(rng.uniform(low, high))
    return NoiseParams(
        baseline_amplitude=config.baseline_wander_amplitude
        * float(rng.uniform(0.7, 1.3)),
        noise_std=config.noise_std * float(rng.uniform(0.8, 1.2)),
        impulse_rate=0.4 * float(rng.uniform(0.5, 1.5)),
        impulse_amplitude=1.5 * float(rng.uniform(0.8, 1.2)),
        fidget_rate=config.fidget_rate * instability,
        fidget_amplitude=config.fidget_amplitude * float(rng.uniform(0.8, 1.2)),
        instability=instability,
    )


def baseline_wander(
    n_samples: int, fs: float, params: NoiseParams, rng: np.random.Generator
) -> np.ndarray:
    """Slow non-linear baseline drift.

    Three random low-frequency sinusoids (0.05-0.45 Hz) plus a heavily
    smoothed random walk. The result is what the smoothness-priors
    detrender must remove before short-time energy analysis.
    """
    if n_samples <= 0 or fs <= 0:
        raise ConfigurationError("n_samples and fs must be positive")
    t = np.arange(n_samples) / fs
    drift = np.zeros(n_samples)
    for _ in range(3):
        freq = rng.uniform(0.05, 0.45)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        amp = rng.uniform(0.3, 1.0)
        drift += amp * np.sin(2.0 * np.pi * freq * t + phase)

    walk = np.cumsum(rng.normal(0.0, 1.0, size=n_samples))
    window = max(1, int(round(2.0 * fs)))
    kernel = np.ones(window) / window
    walk = np.convolve(walk, kernel, mode="same")
    peak = np.max(np.abs(walk))
    if peak > 0:
        walk = walk / peak

    return params.baseline_amplitude * (0.6 * drift / 3.0 + 0.4 * walk)


def impulse_noise(
    n_samples: int, fs: float, params: NoiseParams, rng: np.random.Generator
) -> np.ndarray:
    """Sparse single-sample spikes from the low-cost sensor front end."""
    if n_samples <= 0 or fs <= 0:
        raise ConfigurationError("n_samples and fs must be positive")
    out = np.zeros(n_samples)
    expected = params.impulse_rate * n_samples / fs
    count = rng.poisson(expected)
    if count == 0:
        return out
    positions = rng.integers(0, n_samples, size=count)
    amplitudes = params.impulse_amplitude * rng.standard_cauchy(size=count)
    amplitudes = np.clip(amplitudes, -6 * params.impulse_amplitude,
                         6 * params.impulse_amplitude)
    out[positions] += amplitudes
    return out


def fidget_bumps(
    n_samples: int, fs: float, params: NoiseParams, rng: np.random.Generator
) -> np.ndarray:
    """Sporadic non-keystroke motion bumps (user restlessness).

    Each bump is a random-width Gaussian deflection; rate scales with
    the user's instability so restless users get noisier recordings and
    lower authentication accuracy, as observed in Fig. 8.
    """
    if n_samples <= 0 or fs <= 0:
        raise ConfigurationError("n_samples and fs must be positive")
    out = np.zeros(n_samples)
    expected = params.fidget_rate * n_samples / fs
    count = rng.poisson(expected)
    t = np.arange(n_samples) / fs
    for _ in range(count):
        center = rng.uniform(0.0, n_samples / fs)
        width = rng.uniform(0.08, 0.3)
        amp = params.fidget_amplitude * rng.normal(0.0, 1.0)
        out += amp * np.exp(-0.5 * ((t - center) / width) ** 2)
    return out


def synthesize_noise(
    n_samples: int, fs: float, params: NoiseParams, rng: np.random.Generator
) -> np.ndarray:
    """Full additive disturbance: wander + wideband + impulses + fidgets.

    Returns:
        Array of shape ``(n_samples,)``.
    """
    wideband = rng.normal(0.0, params.noise_std, size=n_samples)
    return (
        baseline_wander(n_samples, fs, params, rng)
        + wideband
        + impulse_noise(n_samples, fs, params, rng)
        + fidget_bumps(n_samples, fs, params, rng)
    )
