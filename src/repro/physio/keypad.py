"""PIN pad geometry and hand assignment.

The paper's volunteers type on a standard 3x4 smartphone PIN pad:

.. code-block:: text

    1 2 3
    4 5 6
    7 8 9
      0

Key position drives two things in the simulation. First, the thumb
excursion needed to reach a key modulates the wrist-muscle engagement,
so the keystroke-artifact parameters vary smoothly with key coordinates
(Section III: "different keystrokes bring about different pulse
patterns"). Second, in two-handed typing the column determines which
thumb presses the key; only presses by the watch-wearing (left) hand
leave an artifact in the PPG trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from ..types import Hand, PIN_PAD_KEYS

#: Grid coordinates (column, row) of each key on the 3x4 pad.
_KEY_GRID: Dict[str, Tuple[int, int]] = {  # concurrency: immutable-after-init
    "1": (0, 0), "2": (1, 0), "3": (2, 0),
    "4": (0, 1), "5": (1, 1), "6": (2, 1),
    "7": (0, 2), "8": (1, 2), "9": (2, 2),
    "0": (1, 3),
}


def key_position(key: str) -> Tuple[float, float]:
    """Return normalized (x, y) coordinates of ``key`` on the pad.

    x runs -1 (left column) to +1 (right column); y runs -1 (top row)
    to +1 (bottom row, where "0" sits).
    """
    if key not in _KEY_GRID:
        raise ConfigurationError(f"unknown PIN pad key: {key!r}")
    col, row = _KEY_GRID[key]
    return (col - 1.0, (row - 1.5) / 1.5)


@dataclass(frozen=True)
class PinPad:
    """A PIN pad with a per-user two-handed hand-assignment habit.

    In one-handed typing every key is pressed by the thumb of the hand
    holding the phone (assumed to be the watch-wearing left hand, as in
    the paper's data collection). In two-handed typing, left-column keys
    go to the left thumb and right-column keys to the right thumb; for
    the middle column each user has a fixed habit captured by
    ``middle_column_left`` (a per-key preference map).

    Attributes:
        middle_column_left: for each middle-column key ("2", "5", "8",
            "0"), whether this user presses it with the left thumb.
    """

    middle_column_left: Tuple[Tuple[str, bool], ...] = (
        ("2", True), ("5", True), ("8", False), ("0", False),
    )

    def __post_init__(self) -> None:
        keys = {k for k, _ in self.middle_column_left}
        expected = {"2", "5", "8", "0"}
        if keys != expected:
            raise ConfigurationError(
                f"middle-column habit must cover {sorted(expected)}, got {sorted(keys)}"
            )

    @staticmethod
    def sample(rng: np.random.Generator) -> "PinPad":
        """Sample a per-user pad with a random middle-column habit."""
        habit = tuple((key, bool(rng.random() < 0.5)) for key in ("2", "5", "8", "0"))
        return PinPad(middle_column_left=habit)

    def hand_for_key(self, key: str, one_handed: bool) -> Hand:
        """Return the hand this user presses ``key`` with."""
        if one_handed:
            return Hand.LEFT
        col, _row = _KEY_GRID.get(key, (None, None))
        if col is None:
            raise ConfigurationError(f"unknown PIN pad key: {key!r}")
        if col == 0:
            return Hand.LEFT
        if col == 2:
            return Hand.RIGHT
        habit = dict(self.middle_column_left)
        return Hand.LEFT if habit[key] else Hand.RIGHT

    def assign_hands(
        self,
        pin: str,
        one_handed: bool,
        forced_left_count: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> Tuple[Hand, ...]:
        """Assign a hand to each digit of ``pin``.

        Args:
            pin: the digits to be typed.
            one_handed: if True, all keys go to the left hand.
            forced_left_count: if given (two-handed only), override the
                habit so that exactly this many keystrokes land on the
                left (watch-wearing) hand — used by the evaluation to
                build the paper's "double-2" and "double-3" cases.
            rng: randomness source for breaking ties when forcing a
                count; required when ``forced_left_count`` is given.

        Raises:
            ConfigurationError: if ``forced_left_count`` is infeasible
                for the PIN length or requested in one-handed mode.
        """
        for digit in pin:
            if digit not in _KEY_GRID:
                raise ConfigurationError(f"unknown PIN pad key: {digit!r}")
        if one_handed:
            if forced_left_count is not None and forced_left_count != len(pin):
                raise ConfigurationError(
                    "cannot force a left-hand count in one-handed mode"
                )
            return tuple(Hand.LEFT for _ in pin)

        hands = [self.hand_for_key(d, one_handed=False) for d in pin]
        if forced_left_count is None:
            return tuple(hands)

        if not 0 <= forced_left_count <= len(pin):
            raise ConfigurationError(
                f"forced_left_count={forced_left_count} infeasible for PIN "
                f"of length {len(pin)}"
            )
        if rng is None:
            raise ConfigurationError("rng is required when forcing a left-hand count")

        current = sum(1 for h in hands if h is Hand.LEFT)
        indices = list(range(len(pin)))
        rng.shuffle(indices)
        for i in indices:
            if current == forced_left_count:
                break
            if current < forced_left_count and hands[i] is Hand.RIGHT:
                hands[i] = Hand.LEFT
                current += 1
            elif current > forced_left_count and hands[i] is Hand.LEFT:
                hands[i] = Hand.RIGHT
                current -= 1
        return tuple(hands)


def all_keys() -> Tuple[str, ...]:
    """Return every key on the pad, in digit order."""
    return PIN_PAD_KEYS
