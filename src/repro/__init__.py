"""Reproduction of P2Auth (ICDCS 2023).

P2Auth is a two-factor authentication scheme combining the PIN with
keystroke-induced photoplethysmography (PPG) measurements from a wrist
wearable. This package reimplements the full system — the signal
pipeline, MiniRocket feature extraction, per-user ridge classifiers,
privacy-boost waveform fusion, and all evaluation baselines — on top of
a physiologically grounded PPG simulator that substitutes for the
paper's human-subject data collection (see DESIGN.md).

Quickstart::

    import numpy as np
    from repro import P2Auth, TrialSynthesizer, sample_population

    users = sample_population(5, seed=7)
    synth = TrialSynthesizer()
    rng = np.random.default_rng(0)

    legit = users[0]
    enroll = [synth.synthesize_trial(legit, "1628", rng) for _ in range(9)]
    third_party = [
        synth.synthesize_trial(u, "1628", rng) for u in users[1:] for _ in range(8)
    ]

    auth = P2Auth(pin="1628")
    auth.enroll(enroll, third_party)

    probe = synth.synthesize_trial(legit, "1628", rng)
    decision = auth.authenticate(probe, claimed_pin="1628")
    print(decision.accepted, decision.reason)
"""

from .config import (
    PAPER_PINS,
    PipelineConfig,
    ProtocolConfig,
    SimulationConfig,
)
from .core.attacks import EmulatingAttacker, RandomAttacker
from .core.authentication import AuthDecision
from .core.authenticator import P2Auth
from .errors import (
    AuthenticationError,
    ConfigurationError,
    EnrollmentError,
    NotFittedError,
    P2AuthError,
    SegmentationError,
    SignalError,
)
from .physio import TrialSynthesizer, UserProfile, sample_population, sample_user
from .types import (
    AccelRecording,
    ChannelInfo,
    Hand,
    InputCase,
    KeystrokeEvent,
    PinEntryTrial,
    PPGRecording,
    PROTOTYPE_CHANNELS,
    SegmentedKeystroke,
    Wavelength,
)

__version__ = "1.0.0"

__all__ = [
    "AccelRecording",
    "AuthDecision",
    "AuthenticationError",
    "ChannelInfo",
    "ConfigurationError",
    "EmulatingAttacker",
    "EnrollmentError",
    "Hand",
    "InputCase",
    "KeystrokeEvent",
    "NotFittedError",
    "P2Auth",
    "P2AuthError",
    "PAPER_PINS",
    "PinEntryTrial",
    "PipelineConfig",
    "PPGRecording",
    "PROTOTYPE_CHANNELS",
    "ProtocolConfig",
    "RandomAttacker",
    "SegmentationError",
    "SegmentedKeystroke",
    "SignalError",
    "SimulationConfig",
    "TrialSynthesizer",
    "UserProfile",
    "Wavelength",
    "sample_population",
    "sample_user",
    "__version__",
]
