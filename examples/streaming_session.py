#!/usr/bin/env python3
"""A realistic wearable session: wear detection + streaming keystrokes.

The paper's deployment story (Section VI): the user authenticates when
putting the watch on; afterwards, wear is tracked from the heart-rate
status, and sensitive actions re-authenticate. This example simulates
that session loop:

1. the watch comes off a table (noise) — wear detection says "not worn";
2. it is strapped on — the cardiac rhythm appears and is detected;
3. PPG streams in chunk by chunk while a PIN is typed; the streaming
   detector finds the keystrokes causally, without buffering the trial;
4. the detected events drive the normal enrollment-time segmentation.

Run:  python examples/streaming_session.py
"""

import numpy as np

from repro import TrialSynthesizer, sample_population
from repro.core import StreamingKeystrokeDetector, detect_wear
from repro.physio.cardiac import synthesize_cardiac
from repro.types import PPGRecording

PIN = "1628"
CHUNK = 25  # samples per BLE packet at 100 Hz -> 4 packets/second


def main() -> None:
    rng = np.random.default_rng(21)
    users = sample_population(3, seed=17)
    user = users[0]
    synth = TrialSynthesizer()

    # --- 1. off-wrist: ambient noise only -------------------------------
    noise = rng.normal(0.0, 0.25, size=(4, 600))
    off = PPGRecording(samples=noise, fs=100.0)
    status = detect_wear(off)
    print(f"watch on the table : worn={status.worn} "
          f"(confidence {status.confidence:.2f})")

    # --- 2. strapped on: the cardiac rhythm appears ----------------------
    cardiac = synthesize_cardiac(800, 100.0, user.cardiac, rng)
    worn_rec = PPGRecording(
        samples=np.tile(cardiac, (4, 1))
        + rng.normal(0.0, 0.15, size=(4, 800)),
        fs=100.0,
    )
    status = detect_wear(worn_rec)
    print(f"watch strapped on  : worn={status.worn} "
          f"heart rate ~{status.heart_rate_bpm:.0f} bpm "
          f"(true {user.cardiac.heart_rate:.0f} bpm)\n")

    # --- 3. the PIN is typed; samples arrive in chunks -------------------
    trial = synth.synthesize_trial(user, PIN, rng)
    samples = trial.recording.samples
    detector = StreamingKeystrokeDetector(fs=trial.recording.fs)

    print(f"streaming {samples.shape[1]} samples in {CHUNK}-sample chunks...")
    events = []
    for start in range(0, samples.shape[1], CHUNK):
        for event in detector.push(samples[:, start : start + CHUNK]):
            latency = start / trial.recording.fs - event.time
            print(f"  keystroke at {event.time:.2f}s "
                  f"(energy {event.energy:.0f}, "
                  f"confirmed {latency:.2f}s later)")
            events.append(event)
    events.extend(detector.flush())

    # --- 4. compare with ground truth ------------------------------------
    print("\nground truth vs detection:")
    for key_event in trial.events:
        nearest = min(
            (abs(e.time - key_event.true_time) for e in events),
            default=float("inf"),
        )
        status = "hit" if nearest < 0.35 else "MISS"
        print(f"  key {key_event.key} at {key_event.true_time:.2f}s -> "
              f"nearest detection {nearest * 1000:.0f} ms away  [{status}]")


if __name__ == "__main__":
    main()
