#!/usr/bin/env python3
"""Privacy boost: hiding keystroke templates by waveform fusion.

A keystroke-PPG template is a biometric — once leaked, it cannot be
rotated like a password. The paper's privacy boost (Eq. 4) therefore
stores only the *sum* of the four single-keystroke waveforms. This
example shows (a) the small accuracy cost of fusion, (b) that the
fused template no longer exposes individual keystroke waveforms, and
(c) that attackers are still rejected.

Run:  python examples/privacy_boost.py
"""

import numpy as np

from repro import P2Auth, TrialSynthesizer, sample_population
from repro.config import PipelineConfig
from repro.core import (
    EnrollmentOptions,
    extract_segments,
    fuse_waveforms,
    preprocess_trial,
)

PIN = "1628"


def main() -> None:
    rng = np.random.default_rng(5)
    users = sample_population(12, seed=13)
    synth = TrialSynthesizer()
    legit, attacker = users[0], users[11]

    enrollment = [synth.synthesize_trial(legit, PIN, rng) for _ in range(9)]
    third_party = [
        synth.synthesize_trial(u, PIN, rng) for u in users[1:10] for _ in range(12)
    ]

    # Enroll twice: with and without the privacy boost.
    plain = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=2520))
    plain.enroll(enrollment, third_party)
    boosted = P2Auth(
        pin=PIN,
        options=EnrollmentOptions(num_features=2520, privacy_boost=True),
    )
    boosted.enroll(enrollment, third_party)

    # --- accuracy cost of fusion ---------------------------------------
    probes = [synth.synthesize_trial(legit, PIN, rng) for _ in range(10)]
    acc_plain = np.mean([plain.authenticate(t).accepted for t in probes])
    acc_boost = np.mean([boosted.authenticate(t).accepted for t in probes])
    print("Legitimate acceptance:")
    print(f"  full waveform model : {acc_plain:.0%}")
    print(f"  fused (privacy)     : {acc_boost:.0%}")
    print("  -> fusion trades a little accuracy for template privacy\n")

    # --- what the stored template reveals --------------------------------
    # Every keystroke shares the same gross bump shape, so raw
    # correlation with the fused template is always high and proves
    # nothing. What fusion hides is the per-key DETAIL — the part of
    # each keystroke waveform beyond the shared shape, which is exactly
    # what the per-key classifiers authenticate on. We measure how much
    # of that detail the best linear read-out of the stolen template
    # recovers.
    config = PipelineConfig()
    pre = preprocess_trial(enrollment[0], config)
    segments = extract_segments(pre, config)
    fused = fuse_waveforms(segments)
    mean_shape = np.mean([s.samples for s in segments], axis=0)
    fused_detail = (fused / len(segments) - mean_shape).ravel()
    print("Template leakage check (fraction of each keystroke's per-key")
    print("detail recoverable from the stolen fused template):")
    for segment in segments:
        detail = (segment.samples - mean_shape).ravel()
        denom = np.linalg.norm(detail) * np.linalg.norm(fused_detail)
        rho = float(detail @ fused_detail / denom) if denom > 0 else 0.0
        print(f"  key {segment.key}: recoverable detail {abs(rho):.0%}")
    print("  -> structurally zero: the fused template equals K x the mean")
    print("     shape, so per-key deviations are absent from storage\n")

    # --- attackers are still rejected -------------------------------------
    attacks = [
        synth.synthesize_trial(attacker, PIN, rng, rhythm_from=legit)
        for _ in range(10)
    ]
    trr = np.mean([not boosted.authenticate(t).accepted for t in attacks])
    print(f"Emulating-attack rejection under privacy boost: {trr:.0%}")


if __name__ == "__main__":
    main()
