#!/usr/bin/env python3
"""A guided tour of the signal pipeline (Fig. 4, preprocessing phase).

Synthesizes one PIN entry and walks it through every stage, printing
what each stage contributes — the ASCII sparklines make the keystroke
artifacts visible right in the terminal:

1. raw multi-channel PPG from the wearable prototype;
2. median filtering (impulse noise removal);
3. fine-grained keystroke time calibration (Eq. 1);
4. smoothness-priors detrending (Eq. 2-3);
5. short-time energy detection and input-case identification;
6. waveform segmentation (90-sample windows).

Run:  python examples/signal_pipeline_tour.py
"""

import numpy as np

from repro import TrialSynthesizer, sample_population
from repro.config import PipelineConfig
from repro.core import identify_input_case, preprocess_trial
from repro.signal import short_time_energy

PIN = "1628"
SPARKS = " .:-=+*#%@"


def sparkline(x: np.ndarray, width: int = 100) -> str:
    """Render a signal as a one-line ASCII sparkline."""
    bins = np.array_split(x, width)
    values = np.array([np.mean(np.abs(b - x.mean())) for b in bins])
    span = values.max() - values.min()
    if span == 0:
        return SPARKS[0] * width
    levels = ((values - values.min()) / span * (len(SPARKS) - 1)).astype(int)
    return "".join(SPARKS[i] for i in levels)


def main() -> None:
    rng = np.random.default_rng(1)
    users = sample_population(3, seed=99)
    synth = TrialSynthesizer()
    config = PipelineConfig()

    trial = synth.synthesize_trial(users[0], PIN, rng)
    rec = trial.recording
    print(f"Trial: user {trial.user_id} typed {trial.pin!r}; "
          f"{rec.n_channels} channels x {rec.n_samples} samples @ {rec.fs:.0f} Hz")
    print(f"True press times   : "
          f"{[f'{e.true_time:.2f}' for e in trial.events]}")
    print(f"Phone-reported     : "
          f"{[f'{e.reported_time:.2f}' for e in trial.events]} "
          f"(communication delay jitter)\n")

    print("Raw channel 0 (infrared, sensor site 0):")
    print(f"  |{sparkline(rec.samples[0])}|\n")

    pre = preprocess_trial(trial, config)

    print("After median filter + smoothness-priors detrending (channel avg):")
    print(f"  |{sparkline(pre.reference)}|")
    marks = [" "] * 100
    for index in pre.keystroke_indices:
        marks[min(99, int(index / rec.n_samples * 100))] = "^"
    print(f"  |{''.join(marks)}|  ^ = calibrated keystroke moments\n")

    fs = rec.fs
    print("Calibration vs truth (samples):")
    for event, index in zip(trial.events, pre.keystroke_indices):
        true_idx = int(round(event.true_time * fs))
        reported_idx = int(round(event.reported_time * fs))
        print(f"  key {event.key}: reported {reported_idx:4d}  "
              f"calibrated {index:4d}  true press {true_idx:4d}")
    print()

    energy = short_time_energy(pre.reference, config.energy_window)
    threshold = config.energy_threshold_ratio * energy.mean()
    print(f"Short-time energy (window {config.energy_window}, "
          f"threshold = {config.energy_threshold_ratio} x mean = {threshold:.1f}):")
    print(f"  |{sparkline(energy)}|")
    print(f"  keystrokes detected: {pre.detected_count}/{len(trial.pin)}")
    print(f"  input case         : {identify_input_case(pre).value}\n")

    print(f"Segmentation ({config.segment_window}-sample windows):")
    for position in pre.detected_positions():
        segment = pre.segment(position, config.segment_window)
        print(f"  key {segment.key}: |{sparkline(segment.samples[0], 60)}|")


if __name__ == "__main__":
    main()
