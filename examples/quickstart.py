#!/usr/bin/env python3
"""Quickstart: enroll a user and authenticate PIN entries.

This walks the complete P2Auth workflow on the simulated substrate:

1. sample a small population (the "volunteers");
2. synthesize enrollment PIN entries for one legitimate user plus a
   third-party negative store (what the paper keeps on the phone);
3. enroll — this trains the full-waveform and per-key models;
4. authenticate legitimate probes and two kinds of attackers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import P2Auth, TrialSynthesizer, sample_population
from repro.core import EmulatingAttacker, EnrollmentOptions, RandomAttacker

PIN = "1628"


def main() -> None:
    rng = np.random.default_rng(42)
    users = sample_population(12, seed=7)
    synth = TrialSynthesizer()

    legit = users[0]
    print(f"Enrolling user {legit.user_id} with PIN {PIN!r}...")

    # Nine enrollment entries — the usability cap the paper argues for.
    enrollment = [synth.synthesize_trial(legit, PIN, rng) for _ in range(9)]

    # The third-party store: other people's entries of the same PIN.
    # Users 10 and 11 are reserved as attackers and stay out of the store.
    third_party = [
        synth.synthesize_trial(u, PIN, rng)
        for u in users[1:10]
        for _ in range(12)
    ]

    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=2520))
    auth.enroll(enrollment, third_party)
    print(f"Enrolled. Per-key models: {', '.join(auth.models.keys_enrolled)}\n")

    # --- Legitimate authentication -------------------------------------
    print("Legitimate one-handed entries:")
    for i in range(5):
        probe = synth.synthesize_trial(legit, PIN, rng)
        decision = auth.authenticate(probe)
        print(f"  attempt {i + 1}: accepted={decision.accepted}  ({decision.reason})")

    # --- Wrong PIN is rejected before any signal analysis ---------------
    probe = synth.synthesize_trial(legit, PIN, rng)
    decision = auth.authenticate(probe, claimed_pin="0000")
    print(f"\nRight person, wrong PIN: accepted={decision.accepted}  ({decision.reason})")

    # --- Random attack ---------------------------------------------------
    print("\nRandom attacker (guesses PINs, own physiology):")
    attacker = RandomAttacker(users[10], synth, rng)
    rejected = sum(not auth.authenticate(attacker.attempt()).accepted for _ in range(10))
    print(f"  rejected {rejected}/10 attempts")

    # --- Emulating attack --------------------------------------------------
    print("\nEmulating attacker (knows the PIN, imitates the rhythm):")
    emulator = EmulatingAttacker(users[11], legit, synth, rng)
    rejected = sum(
        not auth.authenticate(emulator.attempt(PIN)).accepted for _ in range(10)
    )
    print(f"  rejected {rejected}/10 attempts")
    print("\nThe second factor holds: physiology cannot be imitated by observation.")


if __name__ == "__main__":
    main()
