#!/usr/bin/env python3
"""Persisting an enrolled authenticator across sessions.

A deployed P2Auth enrolls once and then lives on the device. This
example enrolls a user, saves the models to an ``.npz`` archive,
"reboots" (drops everything), restores, and shows the restored
authenticator makes bit-identical decisions — including rejecting a
wrong PIN purely from the stored salted digest, without ever having
seen the PIN in this process.

Run:  python examples/save_and_restore.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import P2Auth, TrialSynthesizer, sample_population
from repro.core import EnrollmentOptions, load_authenticator, save_authenticator

PIN = "1628"


def main() -> None:
    rng = np.random.default_rng(3)
    users = sample_population(12, seed=23)
    synth = TrialSynthesizer()
    legit = users[0]

    print("Session 1: enrolling...")
    enrollment = [synth.synthesize_trial(legit, PIN, rng) for _ in range(9)]
    third_party = [
        synth.synthesize_trial(u, PIN, rng) for u in users[1:10] for _ in range(10)
    ]
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=2520))
    auth.enroll(enrollment, third_party)

    probes = [synth.synthesize_trial(legit, PIN, rng) for _ in range(5)]
    original = [auth.authenticate(p) for p in probes]
    print(f"  decisions: {[d.accepted for d in original]}")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "user0.npz"
        save_authenticator(auth, path)
        size_kib = path.stat().st_size / 1024
        print(f"  saved to {path.name} ({size_kib:.0f} KiB)\n")

        print("Session 2: restoring after 'reboot'...")
        del auth
        restored = load_authenticator(path)
        replayed = [restored.authenticate(p) for p in probes]
        print(f"  decisions: {[d.accepted for d in replayed]}")

        identical = all(
            a.accepted == b.accepted and np.allclose(a.scores, b.scores)
            for a, b in zip(original, replayed)
        )
        print(f"  bit-identical to session 1: {identical}")

        wrong = restored.authenticate(probes[0], claimed_pin="0000")
        print(f"  wrong PIN against stored digest: accepted={wrong.accepted}")

        attacker_probe = synth.synthesize_trial(
            users[11], PIN, rng, rhythm_from=legit
        )
        attack = restored.authenticate(attacker_probe)
        print(f"  emulating attack on restored models: accepted={attack.accepted}")


if __name__ == "__main__":
    main()
