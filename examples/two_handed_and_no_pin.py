#!/usr/bin/env python3
"""Two-handed typing and the NO-PIN mode.

The paper's Section IV-B.2.6: when the user types with both thumbs,
only the watch-wearing hand's keystrokes appear in the PPG trace, so
the system switches to per-keystroke models with results integration
(2-of-3 must pass, or 2-of-2). And with no fixed PIN at all, the
keystroke pattern alone authenticates — whatever digits are typed.

Run:  python examples/two_handed_and_no_pin.py
"""

import numpy as np

from repro import P2Auth, TrialSynthesizer, sample_population
from repro.core import EnrollmentOptions

PIN = "1628"


def main() -> None:
    rng = np.random.default_rng(11)
    users = sample_population(12, seed=3)
    synth = TrialSynthesizer()
    legit, attacker = users[0], users[11]

    # ---------------------------------------------------------------
    # Part 1: two-handed input cases
    # ---------------------------------------------------------------
    print("=== Two-handed input ===")
    enrollment = [synth.synthesize_trial(legit, PIN, rng) for _ in range(9)]
    third_party = [
        synth.synthesize_trial(u, PIN, rng) for u in users[1:10] for _ in range(12)
    ]
    auth = P2Auth(pin=PIN, options=EnrollmentOptions(num_features=2520))
    auth.enroll(enrollment, third_party)

    for left_count, label in ((3, "double-3"), (2, "double-2")):
        accepted = 0
        cases = []
        for _ in range(8):
            probe = synth.synthesize_trial(
                legit, PIN, rng, one_handed=False, forced_left_count=left_count
            )
            decision = auth.authenticate(probe)
            accepted += decision.accepted
            cases.append(decision.input_case.value if decision.input_case else "?")
        print(f"{label}: accepted {accepted}/8 legitimate entries "
              f"(identified cases: {sorted(set(cases))})")

    # A single watch-hand keystroke is rejected outright for safety.
    probe = synth.synthesize_trial(
        legit, PIN, rng, one_handed=False, forced_left_count=1
    )
    decision = auth.authenticate(probe)
    print(f"single watch-hand keystroke: accepted={decision.accepted} "
          f"({decision.reason})")

    # ---------------------------------------------------------------
    # Part 2: NO-PIN mode — the keystroke pattern is the credential
    # ---------------------------------------------------------------
    print("\n=== NO-PIN mode ===")
    # Enrollment covers every key once per entry so that all ten
    # per-key models can be trained.
    sequence = "1234567890"
    enrollment = [synth.synthesize_trial(legit, sequence, rng) for _ in range(5)]
    third_party = [
        synth.synthesize_trial(u, sequence, rng) for u in users[1:10] for _ in range(8)
    ]
    no_pin_auth = P2Auth(pin=None, options=EnrollmentOptions(num_features=2520))
    no_pin_auth.enroll(enrollment, third_party)

    accepted = 0
    for _ in range(6):
        digits = "".join(str(d) for d in rng.integers(0, 10, size=4))
        probe = synth.synthesize_trial(legit, digits, rng)
        decision = no_pin_auth.authenticate(probe)
        accepted += decision.accepted
    print(f"legitimate user typing random digits: accepted {accepted}/6")

    rejected = 0
    for _ in range(6):
        digits = "".join(str(d) for d in rng.integers(0, 10, size=4))
        probe = synth.synthesize_trial(attacker, digits, rng)
        rejected += not no_pin_auth.authenticate(probe).accepted
    print(f"attacker typing random digits:        rejected {rejected}/6")
    print("\nNo secret to steal, shoulder-surf, or forget — and it still "
          "rejects other people.")


if __name__ == "__main__":
    main()
